"""Campaign reports: per-application and combined results + rendering.

The structures here carry everything the evaluation benches print:
Table-5-style stage counts, the reported/true/false-positive parameter
split (§7.1), pool statistics, hypothesis-testing effects (§7.2), and
machine-time accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.audit import AuditStats
from repro.core.pooling import PoolStats
from repro.core.prerun import PreRunSummary
from repro.core.runner import InstanceResult
from repro.core.triage import ParamVerdict


@dataclass
class StageCounts:
    """Test-instance counts after each §4 technique (one Table 5 column)."""

    original: int = 0
    after_prerun: int = 0
    after_uncertainty: int = 0
    after_pooling: int = 0

    def reduction_orders(self) -> float:
        """Orders of magnitude between original and pooled counts."""
        import math
        if self.after_pooling <= 0 or self.original <= 0:
            return 0.0
        return math.log10(self.original / self.after_pooling)

    def rows(self) -> List[Tuple[str, int]]:
        return [("Original", self.original),
                ("After pre-running unit tests", self.after_prerun),
                ("After removing uncertainty", self.after_uncertainty),
                ("After pooled testing", self.after_pooling)]


@dataclass
class HypothesisTestingStats:
    """§7.2: first-trial failures vs what multi-trial confirmation kept."""

    suspicious_first_trial: int = 0
    confirmed: int = 0
    filtered_as_flaky: int = 0


@dataclass
class SupervisionStats:
    """What the supervised worker pool did to keep the campaign alive.

    Run-scoped operational counters (how many workers this particular
    run spawned, killed, respawned), *not* findings: a resumed campaign
    legitimately reports different numbers here while reproducing the
    same verdicts, so cross-run byte-identity comparisons should treat
    this block as volatile.
    """

    #: the run used the supervised process pool (repro.core.supervise).
    enabled: bool = False
    workers_spawned: int = 0
    #: worker processes that died (crash, rlimit kill, injected death).
    crashes: int = 0
    #: replacement workers forked after a death.
    respawns: int = 0
    #: profiles re-sent to a fresh worker after their worker died.
    redeliveries: int = 0
    #: workers SIGKILLed for exceeding the per-profile wall deadline.
    deadline_kills: int = 0
    #: workers SIGKILLed for missing heartbeats (frozen, not just slow).
    heartbeat_kills: int = 0
    #: workers retired and replaced to refresh per-profile rlimit budgets.
    recycles: int = 0
    #: profiles that exhausted redelivery (or hit the deadline) and were
    #: recorded as WORKER_CRASH infra outcomes instead of retried.
    quarantined: int = 0
    #: >= crash_loop_threshold consecutive worker deaths: the supervisor
    #: stopped dispatching and salvaged a partial report.
    circuit_breaker_tripped: bool = False


@dataclass
class FleetWorker:
    """One remote worker's contribution, aggregated across reconnects."""

    worker: str
    #: connections accepted under this worker name (1 = never dropped).
    connects: int = 0
    #: profiles whose first (winning) outcome arrived on this worker.
    profiles: int = 0
    #: leases this worker held when a connection of its was declared lost.
    leases_lost: int = 0


@dataclass
class DistributionStats:
    """What the distributed coordinator did to keep the campaign alive.

    Run-scoped operational counters, volatile like
    :class:`SupervisionStats`: byte-identity comparisons against serial
    runs must treat this block (and ``supervision``) as excluded.
    """

    #: the run used the distributed coordinator (repro.core.distrib).
    enabled: bool = False
    #: the address the coordinator actually bound ("host:port").
    listen: str = ""
    #: worker connections that completed the hello/welcome handshake.
    workers_joined: int = 0
    #: connections declared lost (EOF, reset, heartbeat silence).
    workers_lost: int = 0
    leases_granted: int = 0
    #: leases re-queued after their holder was lost or the lease expired.
    redeliveries: int = 0
    #: work-stealing copies granted of still-outstanding leases.
    steals: int = 0
    #: results acked but dropped because the profile was already
    #: committed (resend after a lost ack, or a losing stolen copy).
    duplicates_suppressed: int = 0
    #: workers declared lost purely for heartbeat silence.
    heartbeat_expiries: int = 0
    #: leases re-queued for exceeding ``dist_lease_deadline_s``.
    lease_expiries: int = 0
    #: profiles quarantined as WORKER_CRASH after exhausting redelivery.
    quarantined: int = 0
    #: connections refused by the HMAC handshake (bad/missing secret).
    auth_rejects: int = 0
    #: profiles committed from remote outcomes.
    remote_profiles: int = 0
    #: profiles finished by the local fallback pool after degradation.
    local_profiles: int = 0
    #: the coordinator gave up on the fleet (join/fleet grace expired)
    #: and handed the rest of the campaign to the local pool.
    degraded_to_local: bool = False
    #: injected transport fault kind -> count (coordinator side).
    net_faults: Dict[str, int] = field(default_factory=dict)
    #: per-worker rollup, sorted by worker name.
    fleet: List["FleetWorker"] = field(default_factory=list)


@dataclass
class CostCenter:
    """Where a campaign's machine time went, per unit test.

    Computed from the same per-profile accounting the totals use, so
    the rows always sum into ``AppReport.executions`` (minus prerun) —
    deterministic across backends, available even when the observability
    layer is off.
    """

    test: str
    executions: int
    machine_time_s: float
    instances: int
    #: the scheduler cost model's analytic forecast for this profile
    #: (deterministic integer math; see repro.core.costmodel).  Rendered
    #: next to the actuals so prediction drift is visible per test.
    predicted_executions: int = 0


@dataclass
class AppReport:
    """Everything one application's campaign produced."""

    app: str
    stage_counts: StageCounts
    prerun_summary: PreRunSummary
    pool_stats: PoolStats
    hypothesis_stats: HypothesisTestingStats
    verdicts: List[ParamVerdict]
    results_by_param: Dict[str, List[InstanceResult]]
    blacklisted: Tuple[str, ...]
    executions: int
    machine_time_s: float
    #: fault kind -> injections performed, when a chaos plan was active.
    fault_counts: Dict[str, int] = field(default_factory=dict)
    #: infrastructure-error retries burned across all executions.
    infra_retries_performed: int = 0
    #: tests whose profile run crashed and was contained (not aborted).
    degraded_tests: Tuple[str, ...] = ()
    #: subset of degraded_tests whose worker *process* died (error_kind
    #: WORKER_CRASH): quarantined poison profiles, deadline kills, and
    #: profiles cut short by the circuit breaker.
    quarantined_tests: Tuple[str, ...] = ()
    #: per-test error text for degraded tests (full child traceback or
    #: exit-signal description), keyed by test full name.
    degraded_errors: Dict[str, str] = field(default_factory=dict)
    #: the campaign memoized executions (repro.core.execcache); counters
    #: live in pool_stats.exec_cache_*.
    exec_cache_enabled: bool = False
    #: supervised-pool counters (all-zero when supervision was off).
    supervision: SupervisionStats = field(default_factory=SupervisionStats)
    #: distributed-coordinator counters (all-zero without --distributed).
    distribution: DistributionStats = field(default_factory=DistributionStats)
    #: durable result-store counters (repro.core.store.StoreStats) when
    #: the campaign ran with ``--store``; None otherwise.  Volatile like
    #: supervision/distribution: a warm run legitimately reports
    #: different numbers here while reproducing the same findings.
    store: Optional[object] = None
    #: registry wiring-audit results (repro.core.audit) when the campaign
    #: ran with ``--audit``; None otherwise.  Audit probe executions are
    #: accounted inside this block only — never in ``executions`` or
    #: ``machine_time_s`` — so enabling the audit leaves every other
    #: report section byte-identical.
    audit: Optional[AuditStats] = None
    #: most expensive unit tests first (see CostCenter); () before the
    #: campaign computed them.
    cost_centers: Tuple[CostCenter, ...] = ()
    #: the incremental campaign plan (repro.core.plan.CampaignPlan) when
    #: the campaign ran with ``--incremental``; None otherwise.  Like the
    #: store block it is volatile — the classification depends on what
    #: earlier campaigns persisted — and deliberately NOT part of
    #: FINDINGS_KEYS: a REUSE-heavy plan must report the same findings
    #: as a cold run while reporting far fewer executions.
    plan: Optional[object] = None
    #: the campaign-level repro.core.observe.Observation when the
    #: observability layer was on, else None.  Deliberately excluded
    #: from app_report_to_dict: exporters own the serialised forms.
    observation: Optional[object] = None

    @property
    def reported_params(self) -> List[str]:
        return [v.param for v in self.verdicts]

    @property
    def true_problems(self) -> List[ParamVerdict]:
        return [v for v in self.verdicts if v.is_true_problem]

    @property
    def false_positives(self) -> List[ParamVerdict]:
        return [v for v in self.verdicts if not v.is_true_problem]


@dataclass
class CampaignReport:
    """Combined report over all applications (the paper's full evaluation)."""

    apps: List[AppReport] = field(default_factory=list)

    def app(self, name: str) -> AppReport:
        for report in self.apps:
            if report.app == name:
                return report
        raise KeyError(name)

    @property
    def total_reported(self) -> int:
        return sum(len(a.verdicts) for a in self.apps)

    @property
    def total_true_problems(self) -> int:
        return sum(len(a.true_problems) for a in self.apps)

    @property
    def total_false_positives(self) -> int:
        return sum(len(a.false_positives) for a in self.apps)

    @property
    def total_machine_hours(self) -> float:
        return sum(a.machine_time_s for a in self.apps) / 3600.0

    def projected_wall_hours(self, machines: int = 100,
                             containers_per_machine: int = 20) -> float:
        """Wall time if the campaign fanned out like the paper's testbed
        ("we used up to 100 physical machines and allocate 20 Docker
        containers on each")."""
        slots = max(machines * containers_per_machine, 1)
        return self.total_machine_hours / slots

    def all_true_problem_params(self) -> List[Tuple[str, str]]:
        return [(a.app, v.param) for a in self.apps for v in a.true_problems]

    # ------------------------------------------------------------------
    # cross-campaign deduplication: HBase tests rediscover HDFS params,
    # every Hadoop app rediscovers Hadoop Common params, etc.  Table 3
    # lists each parameter once, so the combined tallies dedupe by name.
    # ------------------------------------------------------------------
    def unique_verdicts(self) -> Dict[str, ParamVerdict]:
        merged: Dict[str, ParamVerdict] = {}
        for app_report in self.apps:
            for verdict in app_report.verdicts:
                existing = merged.get(verdict.param)
                if existing is None or (verdict.is_true_problem
                                        and not existing.is_true_problem):
                    merged[verdict.param] = verdict
        return merged

    def unique_true_problems(self) -> List[ParamVerdict]:
        return sorted((v for v in self.unique_verdicts().values()
                       if v.is_true_problem), key=lambda v: v.param)

    def unique_false_positives(self) -> List[ParamVerdict]:
        return sorted((v for v in self.unique_verdicts().values()
                       if not v.is_true_problem), key=lambda v: v.param)


# ---------------------------------------------------------------------------
# JSON-friendly export (used by the CLI's --json flag)
# ---------------------------------------------------------------------------
def verdict_to_dict(verdict: ParamVerdict) -> Dict[str, object]:
    return {
        "param": verdict.param,
        "verdict": verdict.verdict,
        "category": verdict.category,
        "fp_reason": verdict.fp_reason,
        "failing_tests": list(verdict.failing_tests),
        "sample_error": verdict.sample_error,
    }


def app_report_to_dict(report: AppReport) -> Dict[str, object]:
    return {
        "app": report.app,
        "stage_counts": dict(report.stage_counts.rows()),
        "verdicts": [verdict_to_dict(v) for v in report.verdicts],
        "true_problems": [v.param for v in report.true_problems],
        "false_positives": [v.param for v in report.false_positives],
        "blacklisted": list(report.blacklisted),
        "executions": report.executions,
        "machine_time_s": report.machine_time_s,
        "prerun": {
            "total_tests": report.prerun_summary.total_tests,
            "tests_without_nodes": report.prerun_summary.tests_without_nodes,
            "tests_broken_at_baseline":
                report.prerun_summary.tests_broken_at_baseline,
            "tests_with_uncertain_confs":
                report.prerun_summary.tests_with_uncertain_confs,
        },
        "hypothesis_testing": {
            "suspicious_first_trial":
                report.hypothesis_stats.suspicious_first_trial,
            "confirmed": report.hypothesis_stats.confirmed,
            "filtered_as_flaky": report.hypothesis_stats.filtered_as_flaky,
        },
        "pool_stats": {
            "pool_runs": report.pool_stats.pool_runs,
            "bisection_runs": report.pool_stats.bisection_runs,
            "singleton_instances": report.pool_stats.singleton_instances,
            "pools_cleared": report.pool_stats.pools_cleared,
            "blacklist_skips": report.pool_stats.blacklist_skips,
            "pool_voids": report.pool_stats.pool_voids,
            "pool_infra_giveups": report.pool_stats.pool_infra_giveups,
        },
        "exec_cache": {
            "enabled": report.exec_cache_enabled,
            "hits": report.pool_stats.exec_cache_hits,
            "misses": report.pool_stats.exec_cache_misses,
            "bypasses": report.pool_stats.exec_cache_bypasses,
        },
        "resilience": {
            "fault_counts": dict(sorted(report.fault_counts.items())),
            "infra_retries_performed": report.infra_retries_performed,
            "degraded_tests": list(report.degraded_tests),
            "quarantined_tests": list(report.quarantined_tests),
        },
        "audit": (None if report.audit is None else report.audit.to_dict()),
        "cost_centers": [
            {"test": center.test, "executions": center.executions,
             "machine_time_s": center.machine_time_s,
             "instances": center.instances,
             "predicted_executions": center.predicted_executions}
            for center in report.cost_centers
        ],
        "supervision": {
            "enabled": report.supervision.enabled,
            "workers_spawned": report.supervision.workers_spawned,
            "crashes": report.supervision.crashes,
            "respawns": report.supervision.respawns,
            "redeliveries": report.supervision.redeliveries,
            "deadline_kills": report.supervision.deadline_kills,
            "heartbeat_kills": report.supervision.heartbeat_kills,
            "recycles": report.supervision.recycles,
            "quarantined": report.supervision.quarantined,
            "circuit_breaker_tripped":
                report.supervision.circuit_breaker_tripped,
        },
        "plan": (None if report.plan is None else report.plan.to_dict()),
        "store": (None if report.store is None else {
            "enabled": True,
            "segments": report.store.segments,
            "entries_loaded": report.store.entries_loaded,
            "profiles_loaded": report.store.profiles_loaded,
            "hits": report.store.hits,
            "misses": report.store.misses,
            "appends": report.store.appends,
            "salvaged_records": report.store.salvaged_records,
            "corrupt_records": report.store.corrupt_records,
            "truncated_tails": report.store.truncated_tails,
            "stale_refused": report.store.stale_refused,
            "write_errors": report.store.write_errors,
        }),
        "distribution": {
            "enabled": report.distribution.enabled,
            "listen": report.distribution.listen,
            "workers_joined": report.distribution.workers_joined,
            "workers_lost": report.distribution.workers_lost,
            "leases_granted": report.distribution.leases_granted,
            "redeliveries": report.distribution.redeliveries,
            "steals": report.distribution.steals,
            "duplicates_suppressed": report.distribution.duplicates_suppressed,
            "heartbeat_expiries": report.distribution.heartbeat_expiries,
            "lease_expiries": report.distribution.lease_expiries,
            "auth_rejects": report.distribution.auth_rejects,
            "quarantined": report.distribution.quarantined,
            "remote_profiles": report.distribution.remote_profiles,
            "local_profiles": report.distribution.local_profiles,
            "degraded_to_local": report.distribution.degraded_to_local,
            "net_faults": dict(sorted(report.distribution.net_faults.items())),
            "fleet": [
                {"worker": w.worker, "connects": w.connects,
                 "profiles": w.profiles, "leases_lost": w.leases_lost}
                for w in sorted(report.distribution.fleet,
                                key=lambda w: w.worker)
            ],
        },
    }


#: The subset of :func:`app_report_to_dict` that constitutes *findings*:
#: everything the paper's tables are built from.  Deliberately excludes
#: operational accounting (executions, machine time, cache/store/
#: supervision/distribution counters, per-test cost centers), which
#: legitimately differs between a cold and a warm ``--store`` run while
#: the findings must stay byte-identical.
FINDINGS_KEYS: Tuple[str, ...] = (
    "app", "stage_counts", "verdicts", "true_problems", "false_positives",
    "blacklisted", "prerun", "hypothesis_testing", "pool_stats")


def findings_projection(record: Dict[str, object]) -> Dict[str, object]:
    """The findings slice of an ``app_report_to_dict`` record, used by
    warm-vs-cold store equivalence assertions in tests, benches and CI."""
    return {key: record[key] for key in FINDINGS_KEYS}


def campaign_report_to_dict(report: CampaignReport) -> Dict[str, object]:
    return {
        "apps": [app_report_to_dict(a) for a in report.apps],
        "unique_true_problems": [v.param
                                 for v in report.unique_true_problems()],
        "unique_false_positives": [v.param
                                   for v in report.unique_false_positives()],
        "total_machine_hours": report.total_machine_hours,
    }


# ---------------------------------------------------------------------------
# plain-text rendering used by benches and examples
# ---------------------------------------------------------------------------
def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Minimal fixed-width table renderer (no third-party deps)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_stage_counts(reports: Sequence[AppReport]) -> str:
    """Table 5: instance counts after successively applied methods."""
    headers = ["Stage"] + [r.app for r in reports]
    stage_names = [name for name, _ in reports[0].stage_counts.rows()]
    rows = []
    for row_index, stage in enumerate(stage_names):
        row = [stage]
        for report in reports:
            row.append("{:,}".format(report.stage_counts.rows()[row_index][1]))
        rows.append(row)
    return render_table(headers, rows)


def render_unsafe_params(report: CampaignReport) -> str:
    """Table 3: the true heterogeneous-unsafe parameters found, listed
    once each under the section that owns the parameter."""
    from repro.apps.catalog import section_for_param
    rows = []
    for verdict in report.unique_true_problems():
        rows.append([section_for_param(verdict.param), verdict.param,
                     verdict.category])
    rows.sort(key=lambda row: (row[0], row[1]))
    return render_table(["Section", "Parameter", "Category"], rows)


def render_summary(report: CampaignReport) -> str:
    """§7.1 headline numbers, deduplicated across campaigns like Table 3."""
    lines = [
        "reported parameters      : %d" % len(report.unique_verdicts()),
        "true problems            : %d" % len(report.unique_true_problems()),
        "false positives          : %d" % len(report.unique_false_positives()),
        "machine hours (modelled) : %.1f" % report.total_machine_hours,
    ]
    return "\n".join(lines)
