"""Per-profile cost model and makespan-aware (LPT) campaign scheduling.

With ``workers > 1`` the campaign fans whole unit-test profiles over a
worker pool.  Catalog order is makespan-hostile: when the most expensive
profile happens to sit at the end of the corpus, it starts last and the
pool drains to a single busy worker while the rest idle — the classic
multiprocessor-scheduling pathology.  Longest-Processing-Time-first
(LPT) dispatch is the standard 4/3-approximation fix: sort the work
items by predicted cost, descending, and hand the big rocks out first.

The predicted cost of a profile has two factors:

* **How many executions it will take** — analytic, derived from exactly
  the enumeration :meth:`Campaign._profile_body` performs (groups x
  strategies x value-pair layers), the same math behind the report's
  ``StageCounts``.  Each non-empty (strategy, layer) pool costs one
  pooled execution when it passes; a fixed prior for unsafe parameters
  (the paper finds a small minority of parameters heterogeneous-unsafe)
  prices the bisection + Definition-3.1 singleton work the failing
  fraction will add.  Integer arithmetic only, so the prediction is
  bit-identical on every host and backend — it feeds the deterministic
  ``zc_sched_*`` metrics and the report's cost-centers table.
* **How long one execution of this test runs** — measured, taken from
  the pre-run span (every usable test executed exactly once in the
  parent before any dispatch).  Wall-clock weights are host-dependent,
  so they influence *scheduling order only*, never findings: outcomes
  are folded back in catalog order regardless of dispatch order.

Profiles likely to be answered from the execution cache are discounted
(so they sort *later*): a cache hit costs microseconds, and burning a
worker slot on it early starves the genuinely expensive work behind it.

The dispatch order is consumed by ``core.supervise`` (supervised queue
+ thread submission order) and ``core.parallel`` (bare process
submission order); ``CampaignConfig.schedule`` selects ``"lpt"``
(default) or ``"catalog"`` (legacy order, also the perf-baseline mode
of ``benchmarks/bench_campaign_wallclock.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core.plan import PLAN_REUSE, sample_cells
from repro.core.prerun import TestProfile

#: Percent of pooled parameters priced as heterogeneous-unsafe up front.
#: The paper reports a small minority of parameters unsafe; 8% matches
#: what the simulated corpora confirm per pooled run.
UNSAFE_PRIOR_PCT = 8

#: Executions a priced-unsafe parameter adds beyond its pooled run:
#: bisection splits plus the Definition-3.1 singleton treatment
#: (heterogeneous run, homogeneous sides, confirmation re-runs).
SINGLETON_COST = 8

#: Percent of the singleton surcharge expected to come back as
#: execution-cache hits when the cache is on (homogeneous sides collapse
#: onto shared baselines; bisection halves reconstitute seen pools).
CACHE_HIT_PCT = 40

#: Smoothing factor for measured-cost updates: new observations move the
#: stored estimate 30% of the way, so one anomalous run (page-cache-cold
#: host, noisy neighbour) cannot whipsaw the schedule on the next resume.
EWMA_ALPHA = 0.3


class CostBook:
    """EWMA-smoothed *measured* profile costs, persisted beside the journal.

    The analytic prediction in :class:`CostModel` is a cold-start
    estimate; once a profile has actually run, its measured execution
    count and wall time are strictly better scheduling signals.  The book
    journals them next to the checkpoint (``<journal>.weights.json``) so
    a resumed campaign reschedules its *remaining* work from history
    rather than from priors.

    Measured costs are volatile (host-dependent) and feed **scheduling
    order only** — findings are byte-identical regardless, because
    outcomes fold in catalog order.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._costs: Dict[str, Dict[str, float]] = {}

    @staticmethod
    def beside_checkpoint(checkpoint_path: str) -> str:
        return checkpoint_path + ".weights.json"

    # ------------------------------------------------------------------
    def load(self) -> None:
        try:
            with open(self.path) as handle:
                raw = json.load(handle)
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        costs = raw.get("costs", {})
        if isinstance(costs, dict):
            for name, entry in costs.items():
                if isinstance(entry, dict):
                    self._costs[str(name)] = {
                        "executions": float(entry.get("executions", 0.0)),
                        "wall_s": float(entry.get("wall_s", 0.0)),
                        "samples": float(entry.get("samples", 0.0)),
                    }

    def save(self) -> None:
        payload = json.dumps({"version": 1, "costs": self._costs},
                             sort_keys=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        from repro.core.checkpoint import fsync_directory
        fsync_directory(self.path)

    # ------------------------------------------------------------------
    def observe(self, test: str, executions: int,
                wall_s: Optional[float] = None) -> None:
        entry = self._costs.get(test)
        if entry is None:
            entry = {"executions": float(executions),
                     "wall_s": float(wall_s or 0.0),
                     "samples": 1.0}
            self._costs[test] = entry
            return
        entry["executions"] += EWMA_ALPHA * (executions
                                             - entry["executions"])
        if wall_s is not None and wall_s > 0.0:
            if entry["wall_s"] > 0.0:
                entry["wall_s"] += EWMA_ALPHA * (wall_s - entry["wall_s"])
            else:
                entry["wall_s"] = float(wall_s)
        entry["samples"] += 1.0

    def measured(self, test: str) -> Optional[Dict[str, float]]:
        return self._costs.get(test)


@dataclass(frozen=True)
class ProfilePrediction:
    """The cost model's forecast for one usable unit-test profile."""

    test: str
    #: non-empty (group, strategy, layer) pooled runs the enumeration
    #: will submit.
    pool_runs: int
    #: per-parameter units across all pooled runs.
    units: int
    #: analytic execution forecast (deterministic integer math).
    predicted_executions: int
    #: forecast executions the cache will absorb (0 with the cache off).
    predicted_cache_hits: int
    #: measured wall seconds of the single pre-run execution (volatile;
    #: scheduling weight only).
    weight_s: float

    @property
    def effective_executions(self) -> int:
        """Executions expected to actually burn a worker's time."""
        return self.predicted_executions - self.predicted_cache_hits

    @property
    def predicted_wall_s(self) -> float:
        """Scheduling key: forecast wall-clock cost of the profile."""
        weight = self.weight_s if self.weight_s > 0.0 else 1.0
        return self.effective_executions * weight


class CostModel:
    """Builds :class:`ProfilePrediction`\\ s for a campaign's profiles."""

    def __init__(self, campaign: Any) -> None:
        self.campaign = campaign
        self._predictions: Dict[str, ProfilePrediction] = {}

    # ------------------------------------------------------------------
    def predict(self, profile: TestProfile) -> ProfilePrediction:
        name = profile.test.full_name
        cached = self._predictions.get(name)
        if cached is not None:
            return cached
        campaign = self.campaign
        config = campaign.config
        generator = campaign.generator
        registry = campaign.registry
        plan = getattr(campaign, "_plan", None)
        if plan is not None and plan.decision(name) == PLAN_REUSE:
            # A planned-out profile burns zero fresh executions: it is
            # folded from the store.  Pricing it at zero keeps LPT (and
            # the zc_sched_* prediction accounting) honest.
            prediction = ProfilePrediction(
                test=name, pool_runs=0, units=0, predicted_executions=0,
                predicted_cache_hits=0, weight_s=0.0)
            self._predictions[name] = prediction
            return prediction
        pool_runs = 0
        units = 0
        # Mirror of Campaign._profile_body's enumeration, counting
        # instead of running — including the sampling subset, which must
        # prune the exact same (strategy, layer, param) cells here that
        # the body skips.
        for group in sorted(profile.groups):
            group_size = profile.groups[group]
            params = sorted(name_ for name_ in profile.testable_params(group)
                            if name_ in registry
                            and config.param_allowed(name_))
            if not params:
                continue
            pair_counts = {name_: len(generator.value_pairs(
                               registry.get(name_)))
                           for name_ in params}
            layers = max(pair_counts.values(), default=0)
            strategies = list(generator.strategies_for_group(group_size))
            kept = sample_cells(config.sample, config.sample_seed,
                                config.sample_k, name, group, strategies,
                                pair_counts)
            for strategy in strategies:
                for layer in range(layers):
                    layer_units = sum(
                        1 for name_ in params
                        if layer < pair_counts[name_]
                        and (kept is None
                             or (strategy, layer, name_) in kept))
                    if layer_units:
                        pool_runs += 1
                        units += layer_units
        surcharge = (units * UNSAFE_PRIOR_PCT * SINGLETON_COST) // 100
        predicted = pool_runs + surcharge
        hits = (surcharge * CACHE_HIT_PCT) // 100 if config.exec_cache else 0
        prediction = ProfilePrediction(
            test=name, pool_runs=pool_runs, units=units,
            predicted_executions=predicted, predicted_cache_hits=hits,
            weight_s=profile.prerun_wall_s)
        self._predictions[name] = prediction
        return prediction

    # ------------------------------------------------------------------
    def scheduling_wall_s(self, profile: TestProfile) -> float:
        """Best available wall-clock estimate for scheduling ``profile``.

        Preference order: a measured wall time from the campaign's
        :class:`CostBook` (previous runs of this journal), then measured
        execution counts priced at the pre-run weight, then the pure
        analytic forecast.
        """
        prediction = self.predict(profile)
        book = getattr(self.campaign, "cost_book", None)
        if book is not None:
            entry = book.measured(profile.test.full_name)
            if entry is not None:
                if entry.get("wall_s", 0.0) > 0.0:
                    return entry["wall_s"]
                if entry.get("executions", 0.0) > 0.0:
                    weight = (prediction.weight_s
                              if prediction.weight_s > 0.0 else 1.0)
                    return entry["executions"] * weight
        return prediction.predicted_wall_s

    def lpt_order(self, profiles: Sequence[TestProfile]
                  ) -> List[TestProfile]:
        """Profiles sorted longest-first for dispatch.

        Measured costs (when a :class:`CostBook` has history) beat the
        analytic forecast; cache-hit-likely profiles sort later via the
        effective-cost discount.  Ties (and zero-weight corner cases)
        break on the test name so the order is reproducible given
        identical predictions.
        """
        return sorted(profiles,
                      key=lambda p: (-self.scheduling_wall_s(p),
                                     -self.predict(p).effective_executions,
                                     p.test.full_name))
