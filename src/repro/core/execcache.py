"""Content-addressed execution cache: run each distinct execution once.

Pooled testing (§4) exists to amortise redundant executions, yet a naive
TestRunner still re-runs byte-identical work constantly: the
homogeneous-baseline run where every entity sees a parameter's *default*
value is the same execution for every parameter, strategy, and
value-pair layer of a unit test, and the multi-trial confirmation loop
(§5) re-executes an unchanged deterministic test dozens of times.

The cache exploits the determinism of the simulated corpus.  One
execution is fully described by

* the unit test (``test.full_name``),
* the **canonical form** of its configuration assignment
  (:func:`canonical_assignment` — order-insensitive, with homogeneous
  default-value injections collapsed onto the original configuration),
* the trial seed (which feeds ``ctx.rng`` and the fault injector),
* campaign-level context that shapes every run: the fault-plan hash,
  the watchdog budget, the infra-retry budget, IPC sharing.

Soundness argument, in two tiers:

* **Seeded entries** — an execution that consulted ``ctx.rng`` or ran
  under an active fault plan may depend on its seed, so its outcome is
  memoized under ``(context, test, canonical assignment, seed)``.  The
  simulation kernel draws randomness *only* from those two streams, so
  replaying the memoized outcome is indistinguishable from re-running.
* **Deterministic entries** — an execution that never touched
  ``ctx.rng`` and ran with no fault plan is a pure function of
  ``(context, test, canonical assignment)``: with no random draws and no
  injected faults, control flow is fully determined by the injected
  configuration values, so *no* seed can change the outcome (in
  particular it can never start consulting the rng).  Such outcomes are
  memoized seed-free, which is what lets the §5 confirmation loop and
  pool re-draws hit the cache across trials.

Infrastructure-error outcomes are never cached (counted as *bypasses*):
in a real deployment they are environment-flavoured and retry-worthy,
and caching them would defeat the pool re-draw logic.

Collapsing ``homo(param=default)`` onto the original configuration is
sound only when the unit test does not explicitly ``set`` that parameter
(an injected value shadows explicit sets).  The pre-run records each
test's explicitly-set parameters, and callers pass them as
``no_collapse`` so those parameters keep their own cache slots.
"""

from __future__ import annotations

import hashlib
import threading
import zlib
from dataclasses import replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.core.testgen import (HeteroAssignment, HomoAssignment,
                                ParamAssignment)

#: Canonical form of "no value injected anywhere" — the original run.
ORIGINAL: Tuple[str, ...] = ("original",)


def stable_seed(*parts: Any) -> int:
    """Deterministic cross-run seed from identifying strings/ints.

    Each part is length-prefixed before joining so that distinct part
    tuples can never produce the same byte stream — ``("a|b", "c")`` and
    ``("a", "b|c")`` must not share a seed.
    """
    pieces = []
    for part in parts:
        text = str(part)
        pieces.append("%d:%s" % (len(text), text))
    return zlib.crc32("".join(pieces).encode("utf-8"))


def canonical_assignment(assignment: Any,
                         registry: Optional[Any] = None,
                         no_collapse: Iterable[str] = ()) -> Tuple[Any, ...]:
    """A stable, content-addressed form of any runner assignment.

    Two assignments with equal canonical forms produce byte-identical
    executions.  ``registry`` (a ``ParamRegistry``) enables the
    homogeneous default-value collapse; parameters in ``no_collapse``
    (explicitly set by the unit test) are exempt from it.
    """
    if assignment is None:
        return ORIGINAL
    if isinstance(assignment, HomoAssignment):
        exempt = set(no_collapse)
        kept = []
        for name, value in assignment.canonical()[1]:
            if registry is not None and name not in exempt:
                param = registry.maybe_get(name)
                if param is not None and type(param.default) is type(value) \
                        and param.default == value:
                    # Injecting the default is indistinguishable from not
                    # injecting: the configuration would have returned the
                    # registry default anyway (the test never sets it).
                    continue
            kept.append((name, value))
        if not kept:
            return ORIGINAL
        return ("homo", tuple(kept))
    if isinstance(assignment, HeteroAssignment):
        return assignment.canonical()
    if isinstance(assignment, ParamAssignment):
        return ("hetero", (assignment.canonical(),))
    # Unknown assignment type: fall back to its repr so distinct objects
    # at least never share a slot spuriously via an empty form.
    return ("opaque", type(assignment).__name__, repr(assignment))


def fingerprint(canonical: Any) -> str:
    """Collision-resistant digest of a canonical structure."""
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()


def execution_seed(test_name: str, canonical: Any, trial: int) -> int:
    """The trial seed for one execution, derived from *content*.

    Deriving seeds from the canonical assignment (rather than from
    display labels) means two executions with identical content always
    run under the same seed — so they are byte-identical and the cache
    may serve one for the other even when the execution is seed-
    sensitive.
    """
    return stable_seed(test_name, repr(canonical), trial)


class ExecutionCache:
    """Memoizes ``RunOutcome``s for one campaign.

    Thread-safe (one campaign's worker threads share it); under the
    process backend each worker inherits a fork-time copy, which is
    lossless because cache keys include the unit-test name and each
    worker owns whole unit-test profiles.
    """

    def __init__(self, context: Optional[Mapping[str, Any]] = None) -> None:
        #: campaign-level settings folded into every key, so a cache can
        #: never serve an outcome produced under a different fault plan,
        #: watchdog budget, or IPC-sharing mode.
        self.context_key = fingerprint(tuple(sorted(
            (str(k), repr(v)) for k, v in (context or {}).items())))
        self._lock = threading.Lock()
        self._deterministic: Dict[str, Any] = {}
        self._seeded: Dict[Tuple[str, int], Any] = {}
        self.hits = 0
        self.misses = 0
        self.bypasses = 0

    # ------------------------------------------------------------------
    def _key(self, test_name: str, canonical: Any) -> str:
        return fingerprint((self.context_key, test_name, canonical))

    def lookup(self, test_name: str, canonical: Any, seed: int) -> Optional[Any]:
        """The memoized outcome, or None.  Counts a hit or a miss."""
        key = self._key(test_name, canonical)
        with self._lock:
            outcome = self._deterministic.get(key)
            if outcome is None:
                outcome = self._seeded.get((key, seed))
            if outcome is None:
                self.misses += 1
                return None
            self.hits += 1
            return replace(outcome)

    def store(self, test_name: str, canonical: Any, seed: int, outcome: Any,
              seed_sensitive: bool) -> bool:
        """Memoize one outcome; returns False when it is uncacheable.

        ``seed_sensitive`` must be True when the execution consulted
        ``ctx.rng`` or ran under an active fault plan — such outcomes are
        only valid for their exact seed.
        """
        if outcome.infra:
            with self._lock:
                self.bypasses += 1
            return False
        frozen = replace(outcome)
        key = self._key(test_name, canonical)
        with self._lock:
            if seed_sensitive:
                self._seeded[(key, seed)] = frozen
            else:
                self._deterministic[key] = frozen
        return True

    # ------------------------------------------------------------------
    @property
    def deterministic_entries(self) -> int:
        with self._lock:
            return len(self._deterministic)

    @property
    def seeded_entries(self) -> int:
        with self._lock:
            return len(self._seeded)

    def tier_sizes(self) -> Dict[str, int]:
        """Entry counts by tier, read in one lock acquisition (for the
        end-of-campaign ``zc_runtime_exec_cache_entries`` gauge)."""
        with self._lock:
            return {"deterministic": len(self._deterministic),
                    "seeded": len(self._seeded)}

    def __len__(self) -> int:
        with self._lock:
            return len(self._deterministic) + len(self._seeded)
