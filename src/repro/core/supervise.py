"""Supervised worker pool: crash containment for parallel campaigns.

The bare process backend (:mod:`repro.core.parallel`) dies with the
first worker that segfaults, OOMs, or ``os._exit``s — ``BrokenProcessPool``
aborts the whole campaign — and a CPU-bound hung child blocks the pool
forever, because the simulated-time watchdog cannot see *real-time*
hangs.  A campaign over thousands of flaky unit-test executions (§5,
§7.2) needs the harness itself to tolerate worker failure, so this
module owns its workers directly instead of borrowing an executor:

* each worker is a **forked child on an explicit duplex pipe**; the
  parent sends ``{"task", "delivery"}`` messages and consumes results
  **as they complete**, journaling every ``test-done`` checkpoint record
  immediately — a crash (parent or child) loses at most the in-flight
  profiles;
* a side thread in every child sends **heartbeats**; plain CPU-bound
  work keeps beating (the GIL preempts), so silence means the process is
  genuinely frozen (SIGSTOP, stuck syscall) and it is killed and its
  profile redelivered;
* the parent enforces a per-profile **wall-clock deadline**
  (``--profile-deadline``): on expiry the worker is SIGKILLed, reaped,
  and the profile quarantined — redelivering a deterministic infinite
  loop would only burn another deadline;
* a worker that **dies while running a profile** is reaped (exit signal
  captured) and respawned, and the profile is redelivered to a fresh
  worker at most ``worker_redelivery`` times before it is quarantined as
  a :data:`~repro.core.runner.WORKER_CRASH` infra outcome instead of
  aborting the run;
* ``worker_rlimit_cpu_s`` / ``worker_rlimit_mem_mb`` apply
  ``resource.setrlimit`` caps inside each child.  RLIMIT_CPU accrues per
  *process*, so with a CPU cap set, workers are **recycled** after every
  completed profile — each profile gets a fresh budget;
* ``crash_loop_threshold`` consecutive worker deaths (no completed
  profile in between) trip a **circuit breaker**: something is wrong
  with the environment, not one profile, so the supervisor stops
  dispatching, kills the in-flight workers, and salvages a partial
  report rather than respawning forever.

Worker lifecycle::

    spawn ──> IDLE ──deliver──> BUSY ──result──> IDLE (or recycled)
                │                 │
                │                 ├─ crash / rlimit kill ──> DEAD ─respawn─> IDLE
                │                 ├─ deadline expiry  (SIGKILL) ──> DEAD ...
                │                 └─ heartbeat silence (SIGKILL) ──> DEAD ...
                └─ crash while idle ──> DEAD

Quarantined profiles are journaled like any finished test: a resume
does not retry poison — delete the journal line to force a re-run.

Thread backend and fork-free platforms share the same as-completed
collection (:func:`run_profiles_in_threads`): results are journaled in
the parent the moment each profile finishes (completion order — resume
correctness is keyed by test name, and the final report folds outcomes
back in profile order either way).  Threads cannot be killed, so the
supervision features above are process-backend only.

Like every parallel backend (see :mod:`repro.core.parallel`),
cross-profile blacklist propagation follows scheduling order, which is
timing-dependent: run-to-run byte-identity at ``workers > 1`` requires
decoupled profiles (a ``blacklist_threshold`` no run reaches).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor, as_completed
from multiprocessing import connection
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core import parallel
from repro.core.registry import UnitTest
from repro.core.runner import WORKER_CRASH

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

#: cadence of the child-side heartbeat thread.
HEARTBEAT_INTERVAL_S = 0.5
#: parent poll tick: deadline/heartbeat checks happen at this resolution.
_POLL_INTERVAL_S = 0.05
#: exit status used by the injected worker_crash chaos hook.
INJECTED_CRASH_EXIT = 70

#: worker states (the lifecycle diagram in the module docstring).
IDLE, BUSY, DEAD = "idle", "busy", "dead"

#: Set for the supervisor's lifetime, inherited by forked children:
#: ``{"campaign": Campaign, "profiles": {test name: TestProfile}}``.
_CHILD_STATE: Dict[str, Any] = {}


# ---------------------------------------------------------------------------
# backend dispatch (the orchestrator's single entry point)
# ---------------------------------------------------------------------------
def run_profiles_parallel(campaign: Any, profiles: Sequence[Any],
                          checkpoint: Optional[Any],
                          tests_by_name: Mapping[str, UnitTest]
                          ) -> List[Any]:
    """Fan ``profiles`` over ``campaign.config.workers`` slots.

    ``parallel_backend == "process"`` (with fork available) uses the
    supervised pool — or the bare executor under ``--no-supervise``;
    everything else shares the thread-backed as-completed collection.
    Outcomes come back aligned with ``profiles``.
    """
    config = campaign.config
    if config.parallel_backend == "process" and parallel.fork_available():
        if config.supervise:
            supervisor = Supervisor(campaign, profiles, checkpoint,
                                    tests_by_name)
            campaign.supervision = supervisor.stats
            return supervisor.run()
        return parallel.run_profiles_in_processes(campaign, profiles,
                                                  checkpoint, tests_by_name)
    return run_profiles_in_threads(campaign, profiles, checkpoint)


def run_profiles_in_threads(campaign: Any, profiles: Sequence[Any],
                            checkpoint: Optional[Any]) -> List[Any]:
    """Thread backend behind the same as-completed collection contract.

    Worker threads share the live campaign (tracker confirmations are
    recorded in place, so no parent-side replay), but journaling is
    still hoisted to the collecting thread and happens per completed
    profile — the incremental-journaling guarantee is backend-uniform.
    """
    outcomes: Dict[str, Any] = {}
    with ThreadPoolExecutor(max_workers=campaign.config.workers) as pool:
        futures = {pool.submit(_run_profile_contained_noraise, campaign, p):
                   p.test.full_name for p in profiles}
        for future in as_completed(futures):
            name = futures[future]
            outcome = future.result()
            parallel.commit_outcome(campaign, checkpoint, name, outcome,
                                    replay_tracker=False)
            outcomes[name] = outcome
    return [outcomes[p.test.full_name] for p in profiles]


def _run_profile_contained_noraise(campaign: Any, profile: Any) -> Any:
    try:
        return campaign._run_test_profile(profile, checkpoint=None)
    except Exception:  # noqa: BLE001 - degrade, never kill the pool
        from repro.core.orchestrator import HARNESS_ERROR, ProfileOutcome
        return ProfileOutcome(error=traceback.format_exc(),
                              error_kind=HARNESS_ERROR)


# ---------------------------------------------------------------------------
# child side
# ---------------------------------------------------------------------------
def _apply_rlimits(cpu_s: Optional[int], mem_mb: Optional[int]) -> None:
    if resource is None:  # pragma: no cover - non-POSIX
        return
    if cpu_s:
        # SIGXCPU at the soft limit (default action: terminate); the
        # kernel escalates to SIGKILL at the hard limit if ignored.
        resource.setrlimit(resource.RLIMIT_CPU, (cpu_s, cpu_s + 1))
    if mem_mb:
        cap = mem_mb * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))


def _child_main(conn: Any, inherited: List[Any], rlimit_cpu: Optional[int],
                rlimit_mem: Optional[int], heartbeat_every: float) -> None:
    """Forked worker: recv task names, run profiles, send result dicts."""
    # Close fork-inherited copies of other pipes (and our own parent
    # end): a sibling's EOF must become visible to the parent the moment
    # that sibling dies, not when we do too.
    for other in inherited:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed
            pass
    campaign = _CHILD_STATE["campaign"]
    profiles = _CHILD_STATE["profiles"]
    # A forked TraceLog would interleave writes from many processes into
    # one fd; counters still flow back through the outcome dicts.
    campaign.config.trace = None
    _apply_rlimits(rlimit_cpu, rlimit_mem)

    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def _beat() -> None:
        while not stop_beating.wait(heartbeat_every):
            try:
                with send_lock:
                    conn.send({"kind": "heartbeat"})
            except OSError:  # parent is gone; no reason to live
                os._exit(0)

    threading.Thread(target=_beat, name="heartbeat", daemon=True).start()

    plan = campaign.config.fault_plan
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            os._exit(0)
        if msg is None:  # orderly shutdown / recycle sentinel
            break
        name, delivery = msg["task"], msg["delivery"]
        if plan is not None and plan.worker_crash_decision(name, delivery):
            os._exit(INJECTED_CRASH_EXIT)
        try:
            outcome = campaign._run_test_profile(profiles[name],
                                                 checkpoint=None)
        except BaseException:  # noqa: BLE001 - the wire carries the stack
            from repro.core.orchestrator import HARNESS_ERROR, ProfileOutcome
            outcome = ProfileOutcome(error=traceback.format_exc(),
                                     error_kind=HARNESS_ERROR)
        record = parallel.profile_outcome_to_dict(outcome)
        try:
            with send_lock:
                conn.send({"kind": "result", "task": name,
                           "delivery": delivery, "outcome": record})
        except OSError:
            os._exit(0)
    stop_beating.set()
    conn.close()
    os._exit(0)


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------
def _describe_exit(code: Optional[int]) -> str:
    if code is None:
        return "unknown exit status"
    if code < 0:
        try:
            name = signal.Signals(-code).name
        except ValueError:  # pragma: no cover - exotic signal number
            name = "signal %d" % -code
        return "killed by %s" % name
    if code == INJECTED_CRASH_EXIT:
        return "exit status %d (injected worker_crash fault)" % code
    return "exit status %d" % code


class _Worker:
    """One supervised child process and its pipe."""

    def __init__(self, worker_id: int) -> None:
        self.id = worker_id
        self.state = DEAD
        self.conn: Any = None
        self.proc: Any = None
        #: test full name in flight (None when idle) + its delivery number.
        self.task: Optional[str] = None
        self.delivery = 0
        self.started_at = 0.0
        self.last_seen = 0.0


class Supervisor:
    """Runs one campaign's pending profiles over supervised workers."""

    def __init__(self, campaign: Any, profiles: Sequence[Any],
                 checkpoint: Optional[Any],
                 tests_by_name: Mapping[str, UnitTest],
                 outcome_sink: Optional[Any] = None) -> None:
        from repro.core.report import SupervisionStats
        config = campaign.config
        self.campaign = campaign
        self.profiles = list(profiles)
        self.checkpoint = checkpoint
        self.tests_by_name = tests_by_name
        # Optional callback fired with (name, outcome) after each commit;
        # the distributed worker uses it to ship results upstream while
        # the pool keeps running.
        self.outcome_sink = outcome_sink
        self.stats = SupervisionStats(enabled=True)
        self.deadline = config.profile_deadline_s
        self.heartbeat_timeout = max(config.heartbeat_timeout_s,
                                     2 * HEARTBEAT_INTERVAL_S)
        self.redelivery = max(config.worker_redelivery, 0)
        self.breaker_threshold = max(config.crash_loop_threshold, 1)
        self.rlimit_cpu = config.worker_rlimit_cpu_s
        self.rlimit_mem = config.worker_rlimit_mem_mb
        #: RLIMIT_CPU accrues per process: recycle workers between
        #: profiles so every profile starts with the full budget.
        self.recycle_after_profile = self.rlimit_cpu is not None
        self.slots = max(min(config.workers, len(self.profiles)), 1)

        self.context = multiprocessing.get_context("fork")
        self.workers: List[_Worker] = []
        self.queue: deque = deque()  # (test full name, delivery number)
        self.outcomes: Dict[str, Any] = {}
        self.deliveries: Dict[str, int] = {}
        self.consecutive_crashes = 0
        self.halted = False
        self._next_worker_id = 0

    # ------------------------------------------------------------------
    def run(self) -> List[Any]:
        _CHILD_STATE["campaign"] = self.campaign
        _CHILD_STATE["profiles"] = {p.test.full_name: p
                                    for p in self.profiles}
        self.queue.extend((p.test.full_name, 1) for p in self.profiles)
        try:
            for _ in range(self.slots):
                self.workers.append(self._spawn())
            while True:
                self._dispatch()
                if not self._busy() and (not self.queue or self.halted):
                    break
                self._poll()
                self._enforce_timeouts()
        finally:
            self._shutdown()
            _CHILD_STATE.clear()
        return [self.outcomes[p.test.full_name] for p in self.profiles]

    # -- worker lifecycle ----------------------------------------------
    def _spawn(self) -> _Worker:
        worker = _Worker(self._next_worker_id)
        self._next_worker_id += 1
        parent_conn, child_conn = self.context.Pipe(duplex=True)
        inherited = [w.conn for w in self.workers if w.state != DEAD]
        inherited.append(parent_conn)
        proc = self.context.Process(
            target=_child_main,
            args=(child_conn, inherited, self.rlimit_cpu, self.rlimit_mem,
                  HEARTBEAT_INTERVAL_S),
            name="repro-worker-%d" % worker.id, daemon=True)
        proc.start()
        child_conn.close()  # the child's end lives only in the child now
        worker.conn, worker.proc = parent_conn, proc
        worker.state = IDLE
        worker.last_seen = time.monotonic()
        self.stats.workers_spawned += 1
        return worker

    def _respawn(self) -> None:
        if self.halted or not (self.queue or self._busy()):
            return
        self.stats.respawns += 1
        self.workers.append(self._spawn())

    def _retire(self, worker: _Worker) -> None:
        worker.state = DEAD
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if worker in self.workers:
            self.workers.remove(worker)

    def _kill(self, worker: _Worker) -> None:
        """SIGKILL + reap: the only safe way off a wedged child."""
        try:
            os.kill(worker.proc.pid, signal.SIGKILL)
        except (ProcessLookupError, OSError):  # pragma: no cover - raced
            pass
        worker.proc.join(timeout=5.0)
        self._retire(worker)

    def _recycle(self, worker: _Worker) -> None:
        """Retire a healthy worker (fresh rlimit budget) and replace it."""
        self.stats.recycles += 1
        try:
            worker.conn.send(None)
        except OSError:
            pass
        worker.proc.join(timeout=1.0)
        if worker.proc.is_alive():  # pragma: no cover - stuck in shutdown
            self._kill(worker)
        else:
            self._retire(worker)
        if self.queue:
            self.workers.append(self._spawn())

    # -- scheduling ----------------------------------------------------
    def _busy(self) -> bool:
        return any(w.state == BUSY for w in self.workers)

    def _dispatch(self) -> None:
        if self.halted:
            return
        for worker in list(self.workers):
            if not self.queue:
                break
            if worker.state != IDLE:
                continue
            name, delivery = self.queue.popleft()
            try:
                worker.conn.send({"task": name, "delivery": delivery})
            except OSError:
                self.queue.appendleft((name, delivery))
                self._worker_died(worker)
                continue
            worker.task, worker.delivery = name, delivery
            worker.state = BUSY
            worker.started_at = worker.last_seen = time.monotonic()

    def _poll(self) -> None:
        conns = {w.conn: w for w in self.workers if w.state != DEAD}
        if not conns:
            return
        ready = connection.wait(list(conns), timeout=_POLL_INTERVAL_S)
        for conn in ready:
            worker = conns[conn]
            try:
                while worker.state != DEAD and conn.poll():
                    self._handle(worker, conn.recv())
            except (EOFError, OSError):
                self._worker_died(worker)
        # Forked siblings hold copies of each other's pipe ends, so EOF
        # alone cannot be trusted to announce a death — ask the kernel.
        for worker in list(self.workers):
            if worker.state != DEAD and not worker.proc.is_alive():
                self._worker_died(worker)

    def _handle(self, worker: _Worker, msg: Mapping[str, Any]) -> None:
        worker.last_seen = time.monotonic()
        if msg.get("kind") != "result":
            return  # heartbeat
        name = msg["task"]
        outcome = parallel.profile_outcome_from_dict(msg["outcome"],
                                                     self.tests_by_name)
        parallel.commit_outcome(self.campaign, self.checkpoint, name, outcome)
        self.outcomes[name] = outcome
        if self.outcome_sink is not None:
            self.outcome_sink(name, outcome)
        self.consecutive_crashes = 0
        worker.task = None
        worker.state = IDLE
        if self.recycle_after_profile:
            self._recycle(worker)

    # -- failure handling ----------------------------------------------
    def _worker_died(self, worker: _Worker) -> None:
        if worker.state == DEAD:
            return
        # Last-gasp drain: a result already in the pipe completes the
        # task even though its worker is gone.
        try:
            while worker.task is not None and worker.conn.poll():
                self._handle(worker, worker.conn.recv())
        except (EOFError, OSError):
            pass
        worker.proc.join(timeout=5.0)
        reason = _describe_exit(worker.proc.exitcode)
        self._retire(worker)
        self.stats.crashes += 1
        self.consecutive_crashes += 1
        obs = self.campaign.observation
        if obs is not None:
            # Instant span on the campaign timeline; only emitted on a
            # death, so healthy-run span trees stay backend-identical.
            obs.event("worker-death", kind="supervisor", exit=reason,
                      task=worker.task)
        if worker.task is not None:
            name, delivery = worker.task, worker.delivery
            worker.task = None
            self._requeue_or_quarantine(
                name, delivery,
                "worker process died while running the profile (%s)" % reason)
        if self.consecutive_crashes >= self.breaker_threshold:
            self._trip_breaker(reason)
        else:
            self._respawn()

    def _enforce_timeouts(self) -> None:
        now = time.monotonic()
        for worker in list(self.workers):
            if worker.state != BUSY:
                continue
            over_deadline = (self.deadline is not None
                             and now - worker.started_at > self.deadline)
            silent = now - worker.last_seen > self.heartbeat_timeout
            if not (over_deadline or silent):
                continue
            # The result may have landed just under the wire.
            try:
                while worker.state == BUSY and worker.conn.poll():
                    self._handle(worker, worker.conn.recv())
            except (EOFError, OSError):
                self._worker_died(worker)
                continue
            if worker.state != BUSY:
                continue
            name, delivery = worker.task, worker.delivery
            worker.task = None
            self._kill(worker)
            if over_deadline:
                # A deterministic runaway loop would just burn another
                # full deadline on redelivery: quarantine immediately.
                self.stats.deadline_kills += 1
                self._quarantine(
                    name,
                    "profile exceeded the %.1fs wall-clock deadline "
                    "(--profile-deadline); worker SIGKILLed and reaped"
                    % self.deadline)
                self._respawn()
            else:
                # Heartbeat silence means *frozen*, which is plausibly
                # environmental — redeliver within the usual bound.
                self.stats.heartbeat_kills += 1
                self.consecutive_crashes += 1
                self._requeue_or_quarantine(
                    name, delivery,
                    "worker sent no heartbeat for %.1fs; killed as frozen"
                    % self.heartbeat_timeout)
                if self.consecutive_crashes >= self.breaker_threshold:
                    self._trip_breaker("repeated heartbeat silence")
                else:
                    self._respawn()

    def _requeue_or_quarantine(self, name: str, delivery: int,
                               reason: str) -> None:
        if delivery <= self.redelivery:
            self.stats.redeliveries += 1
            self.queue.append((name, delivery + 1))
        else:
            self._quarantine(
                name, "%s; profile quarantined after %d deliveries"
                % (reason, delivery))

    def _quarantine(self, name: str, reason: str) -> None:
        """Record a WORKER_CRASH infra outcome instead of aborting.

        Journaled like any finished test: a resume does not retry
        poison — delete the journal record to force a re-run.
        """
        from repro.core.orchestrator import ProfileOutcome
        outcome = ProfileOutcome(error=reason, error_kind=WORKER_CRASH)
        parallel.commit_outcome(self.campaign, self.checkpoint, name, outcome)
        self.outcomes[name] = outcome
        if self.outcome_sink is not None:
            self.outcome_sink(name, outcome)
        self.stats.quarantined += 1
        obs = self.campaign.observation
        if obs is not None:
            obs.event("quarantine", kind="supervisor", test=name,
                      reason=reason)
        trace = self.campaign.config.trace
        if trace is not None:
            trace.emit("worker-quarantine", app=self.campaign.app,
                       test=name, error=reason)

    def _trip_breaker(self, reason: str) -> None:
        if self.halted:
            return
        self.halted = True
        self.stats.circuit_breaker_tripped = True
        halt = ("campaign halted by the supervisor's crash-loop circuit "
                "breaker (%d consecutive worker deaths; last: %s)"
                % (self.consecutive_crashes, reason))
        for worker in list(self.workers):
            if worker.state != BUSY:
                continue
            name = worker.task
            worker.task = None
            self._kill(worker)
            self._quarantine(name, halt)
        while self.queue:
            name, _ = self.queue.popleft()
            self._quarantine(name, halt)

    # -- teardown ------------------------------------------------------
    def _shutdown(self) -> None:
        for worker in list(self.workers):
            if worker.state == DEAD:
                continue
            try:
                worker.conn.send(None)
            except OSError:
                pass
        for worker in list(self.workers):
            if worker.state == DEAD:
                continue
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                self._kill(worker)
            else:
                self._retire(worker)
