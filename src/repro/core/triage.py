"""Triage of reported parameters: true problems vs false positives (§7.1).

The paper's authors manually analyzed all 57 reported parameters with
three principles; we encode the same principles mechanically, using the
corpus metadata that mirrors what the authors read off the unit tests:

1. The failure must be possible in a real distributed setting — tests
   that manipulate a server's private data with a client's configuration
   object (``realistic=False``) do not count.
2. An error raised in application code is a real problem.
3. A violated unit-test assertion counts only when it would be meaningful
   in a realistic setting: inconsistencies observable through **public**
   APIs are true problems; those observable only through private
   functions, and *overly strict* assertions, are false positives.

The shared-IPC false positives (four ``ipc.client.*`` parameters) are
recognised by their characteristic error signature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.ipc import IPC_SHARED_PARAMS
from repro.common.params import ParamRegistry
from repro.core.runner import InstanceResult

TRUE_PROBLEM = "true-problem"
FALSE_POSITIVE = "false-positive"

# false-positive reasons (§7.1 "Causes of false positives")
FP_UNREALISTIC = "setting impossible in a real distributed system"
FP_SHARED_IPC = "nodes share the IPC component (violated assumption)"
FP_STRICT_ASSERTION = "overly strict unit-test assertion"
FP_PRIVATE_ONLY = "inconsistency observable only through private APIs"

#: categories used by §7.1's discussion of the true problems
CATEGORY_BY_TAG = {
    "wire-format": "compression/encryption/authentication/transport",
    "heartbeat": "heartbeat-related",
    "max-limit": "max-limit-related",
    "task-count": "counts of tasks",
    "inconsistency": "user-visible inconsistency",
}
DEFAULT_CATEGORY = "others"


@dataclass
class ParamVerdict:
    """Triage outcome for one reported parameter."""

    param: str
    verdict: str
    category: str = DEFAULT_CATEGORY
    fp_reason: str = ""
    failing_tests: Tuple[str, ...] = ()
    sample_error: str = ""

    @property
    def is_true_problem(self) -> bool:
        return self.verdict == TRUE_PROBLEM


def _category_for(param: str, registry: Optional[ParamRegistry]) -> str:
    if registry is not None:
        definition = registry.maybe_get(param)
        if definition is not None:
            for tag in definition.tags:
                if tag in CATEGORY_BY_TAG:
                    return CATEGORY_BY_TAG[tag]
    return DEFAULT_CATEGORY


def triage_param(param: str, results: Sequence[InstanceResult],
                 registry: Optional[ParamRegistry] = None) -> ParamVerdict:
    """Apply the §7.1 principles to one parameter's confirming instances."""
    failing_tests = tuple(sorted({r.instance.test.full_name for r in results}))
    sample_error = next((r.hetero_error for r in results if r.hetero_error), "")

    if param in IPC_SHARED_PARAMS and all(
            "IPC connection parameter" in r.hetero_error for r in results):
        return ParamVerdict(param, FALSE_POSITIVE, fp_reason=FP_SHARED_IPC,
                            failing_tests=failing_tests, sample_error=sample_error)

    realistic = [r for r in results if r.instance.test.realistic]
    if not realistic:
        return ParamVerdict(param, FALSE_POSITIVE, fp_reason=FP_UNREALISTIC,
                            failing_tests=failing_tests, sample_error=sample_error)

    lenient = [r for r in realistic if not r.instance.test.strict_assertion]
    if not lenient:
        return ParamVerdict(param, FALSE_POSITIVE, fp_reason=FP_STRICT_ASSERTION,
                            failing_tests=failing_tests, sample_error=sample_error)

    public = [r for r in lenient if r.instance.test.observability == "public"]
    if not public:
        return ParamVerdict(param, FALSE_POSITIVE, fp_reason=FP_PRIVATE_ONLY,
                            failing_tests=failing_tests, sample_error=sample_error)

    return ParamVerdict(param, TRUE_PROBLEM,
                        category=_category_for(param, registry),
                        failing_tests=failing_tests, sample_error=sample_error)


def triage_report(results_by_param: Dict[str, List[InstanceResult]],
                  registry: Optional[ParamRegistry] = None,
                  blacklisted: Iterable[str] = ()) -> List[ParamVerdict]:
    """Triage every reported parameter; blacklisted parameters with no
    per-instance evidence keep their confirming results from before the
    blacklist kicked in."""
    verdicts = []
    reported = set(results_by_param) | set(blacklisted)
    for param in sorted(reported):
        verdicts.append(triage_param(param, results_by_param.get(param, []),
                                     registry))
    return verdicts
