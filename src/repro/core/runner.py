"""TestRunner: execute test instances and confirm suspicions (§5).

For a test instance (unit test + heterogeneous assignment), TestRunner
follows Definition 3.1: run the heterogeneous configuration and every
corresponding homogeneous configuration.  Only "hetero fails, all homos
pass" makes an instance *suspicious*; suspicious instances then enter the
multi-trial confirmation loop governed by :mod:`repro.core.stats`, which
filters the false positives that nondeterministic tests produce.

To minimise run time, multiple trials happen **only** for suspicious
instances (§5: "we run multiple trials of a test instance only if its
heterogeneous configuration fails and none of its homogeneous
configurations fail in the first trial").
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.confagent import ConfAgent
from repro.core.registry import TestContext, UnitTest
from repro.core.stats import DEFAULT_ALPHA, TrialTally
from repro.core.testgen import HeteroAssignment, TestInstance

# verdicts
PASS = "pass"
BASELINE_FAIL = "baseline-fail"          # a homogeneous side also fails
SUSPICIOUS = "suspicious"                # first trial pattern matched
CONFIRMED_UNSAFE = "confirmed-unsafe"    # hypothesis test significant
FLAKY_DISMISSED = "flaky-dismissed"      # hypothesis test filtered it


@dataclass
class RunOutcome:
    """Result of one execution of one unit test under one assignment."""

    ok: bool
    error_type: str = ""
    error_message: str = ""

    @property
    def failed(self) -> bool:
        return not self.ok


@dataclass
class InstanceResult:
    """Verdict for one test instance after first trial (+ confirmation)."""

    instance: TestInstance
    verdict: str
    hetero_error: str = ""
    tally: Optional[TrialTally] = None
    executions: int = 0

    @property
    def suspicious_at_first_trial(self) -> bool:
        return self.verdict in (CONFIRMED_UNSAFE, FLAKY_DISMISSED)


def stable_seed(*parts: Any) -> int:
    """Deterministic cross-run seed from identifying strings/ints."""
    text = "|".join(str(p) for p in parts)
    return zlib.crc32(text.encode("utf-8"))


class TestRunner:
    """Executes unit tests under ConfAgent sessions and renders verdicts."""

    def __init__(self, alpha: float = DEFAULT_ALPHA, max_trials: int = 40,
                 run_cost_s: float = 60.0) -> None:
        self.alpha = alpha
        self.max_trials = max_trials
        #: charged per execution when estimating machine time; the paper's
        #: whole-system unit tests average minutes because real clusters
        #: must boot — ours run in simulated time, so machine-time figures
        #: are (executions x run_cost_s).
        self.run_cost_s = run_cost_s
        self.executions = 0

    # ------------------------------------------------------------------
    # single execution
    # ------------------------------------------------------------------
    def execute(self, test: UnitTest, assignment: Optional[Any],
                seed: int) -> RunOutcome:
        """Run one unit test once under ``assignment`` (None = original)."""
        self.executions += 1
        agent = ConfAgent(assignment=assignment, record_usage=False)
        ctx = TestContext(rng=random.Random(seed), trial=seed)
        with agent:
            try:
                test.fn(ctx)
            except Exception as exc:  # noqa: BLE001 - oracle: any exception
                return RunOutcome(ok=False, error_type=type(exc).__name__,
                                  error_message=str(exc))
        return RunOutcome(ok=True)

    # ------------------------------------------------------------------
    # Definition 3.1 first trial
    # ------------------------------------------------------------------
    def first_trial(self, test: UnitTest, assignment: HeteroAssignment,
                    label: str) -> Tuple[RunOutcome, List[RunOutcome]]:
        hetero = self.execute(test, assignment,
                              stable_seed(test.full_name, label, "hetero", 0))
        homos: List[RunOutcome] = []
        for side in range(assignment.sides()):
            homos.append(self.execute(
                test, assignment.homo_variant(side),
                stable_seed(test.full_name, label, "homo", side, 0)))
        return hetero, homos

    # ------------------------------------------------------------------
    # full instance evaluation
    # ------------------------------------------------------------------
    def evaluate(self, instance: TestInstance) -> InstanceResult:
        start = self.executions
        label = instance.describe()
        hetero, homos = self.first_trial(instance.test, instance.assignment, label)
        if hetero.ok:
            return self._done(instance, PASS, start)
        if any(h.failed for h in homos):
            return self._done(instance, BASELINE_FAIL, start,
                              hetero_error=hetero.error_message)
        tally = self.confirm(instance.test, instance.assignment, label,
                             first_hetero=hetero, first_homos=homos)
        verdict = CONFIRMED_UNSAFE if tally.significant(self.alpha) else FLAKY_DISMISSED
        return self._done(instance, verdict, start,
                          hetero_error=hetero.error_message, tally=tally)

    def confirm(self, test: UnitTest, assignment: HeteroAssignment, label: str,
                first_hetero: RunOutcome,
                first_homos: List[RunOutcome]) -> TrialTally:
        """Multi-trial confirmation loop for a suspicious instance."""
        tally = TrialTally()
        tally.record_hetero(first_hetero.failed)
        for outcome in first_homos:
            tally.record_homo(outcome.failed)
        trial = 1
        sides = assignment.sides()
        while (not tally.significant(self.alpha)
               and tally.hetero_trials < self.max_trials
               and not tally.hopeless(self.alpha, self.max_trials)):
            hetero = self.execute(test, assignment,
                                  stable_seed(test.full_name, label, "hetero", trial))
            tally.record_hetero(hetero.failed)
            side = trial % sides
            homo = self.execute(test, assignment.homo_variant(side),
                                stable_seed(test.full_name, label, "homo", side, trial))
            tally.record_homo(homo.failed)
            trial += 1
        return tally

    # ------------------------------------------------------------------
    def _done(self, instance: TestInstance, verdict: str, start_executions: int,
              hetero_error: str = "", tally: Optional[TrialTally] = None) -> InstanceResult:
        return InstanceResult(instance=instance, verdict=verdict,
                              hetero_error=hetero_error, tally=tally,
                              executions=self.executions - start_executions)

    # ------------------------------------------------------------------
    @property
    def machine_time_s(self) -> float:
        return self.executions * self.run_cost_s
