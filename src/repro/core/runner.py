"""TestRunner: execute test instances and confirm suspicions (§5).

For a test instance (unit test + heterogeneous assignment), TestRunner
follows Definition 3.1: run the heterogeneous configuration and every
corresponding homogeneous configuration.  Only "hetero fails, all homos
pass" makes an instance *suspicious*; suspicious instances then enter the
multi-trial confirmation loop governed by :mod:`repro.core.stats`, which
filters the false positives that nondeterministic tests produce.

To minimise run time, multiple trials happen **only** for suspicious
instances (§5: "we run multiple trials of a test instance only if its
heterogeneous configuration fails and none of its homogeneous
configurations fail in the first trial").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

import repro.perf as perf
from repro.common.errors import InfrastructureError
from repro.common.faults import FaultInjector, FaultPlan, fault_scope
from repro.common.simulation import SimTimeLimitExceeded, sim_time_limit
from repro.core.confagent import ConfAgent
from repro.core.execcache import (ExecutionCache, canonical_assignment,
                                  execution_seed, stable_seed)
from repro.core.registry import TestContext, UnitTest
from repro.core.stats import DEFAULT_ALPHA, TrialTally
from repro.core.testgen import HeteroAssignment, TestInstance

# verdicts
PASS = "pass"
BASELINE_FAIL = "baseline-fail"          # a homogeneous side also fails
SUSPICIOUS = "suspicious"                # first trial pattern matched
CONFIRMED_UNSAFE = "confirmed-unsafe"    # hypothesis test significant
FLAKY_DISMISSED = "flaky-dismissed"      # hypothesis test filtered it
INFRA_ERROR = "infra-error"              # harness failed even after retries
#: profile-level infra verdict: the worker *process* running the profile
#: died (segfault/OOM/os._exit/deadline kill) and the supervisor
#: quarantined the profile instead of aborting the campaign.  Lives in
#: ProfileOutcome.error_kind, not InstanceResult.verdict: a dead worker
#: produces no instances.
WORKER_CRASH = "worker-crash"

#: default simulated-time budget per execution: generous (a month of
#: cluster time) so only genuinely runaway tests trip it.
DEFAULT_WATCHDOG_SIM_S = 30 * 24 * 3600.0

#: base of the exponential backoff charged (in modelled machine seconds)
#: before an infrastructure-error retry.
INFRA_BACKOFF_BASE_S = 5.0


@dataclass
class RunOutcome:
    """Result of one execution of one unit test under one assignment."""

    ok: bool
    error_type: str = ""
    error_message: str = ""
    #: the simulated-time watchdog killed the execution.
    timed_out: bool = False
    #: the failure was infrastructural (harness/environment), not the
    #: test oracle — never evidence of heterogeneous unsafety.
    infra: bool = False
    #: infra-error retries burned before this outcome was produced.
    retries: int = 0
    #: discrete faults injected during this execution.
    faults: int = 0
    #: the test consulted ``ctx.rng`` — its outcome may depend on the
    #: trial seed, so the execution cache must key it by seed.
    rng_used: bool = False

    @property
    def failed(self) -> bool:
        return not self.ok


@dataclass
class InstanceResult:
    """Verdict for one test instance after first trial (+ confirmation)."""

    instance: TestInstance
    verdict: str
    hetero_error: str = ""
    tally: Optional[TrialTally] = None
    executions: int = 0

    @property
    def suspicious_at_first_trial(self) -> bool:
        return self.verdict in (CONFIRMED_UNSAFE, FLAKY_DISMISSED)


class _TrackedRandom(random.Random):
    """A ``random.Random`` that records whether it was ever consulted.

    Every public drawing method bottoms out in ``random()`` or
    ``getrandbits()``, so flagging those two covers them all.  The flag
    is what lets the execution cache distinguish seed-sensitive
    executions from purely configuration-determined ones.
    """

    used = False

    def random(self) -> float:
        self.used = True
        if perf.FAST_PATH:
            # First draw proved the point; rebind to the C implementation
            # so the remaining draws skip this Python frame entirely.
            # (Instance attributes shadow class methods on lookup, and
            # random.py's mixing methods all fetch via ``self``.)
            self.random = super().random
            return self.random()
        return super().random()

    def getrandbits(self, k: int) -> int:
        self.used = True
        if perf.FAST_PATH:
            self.getrandbits = super().getrandbits
            return self.getrandbits(k)
        return super().getrandbits(k)


class TestRunner:
    """Executes unit tests under ConfAgent sessions and renders verdicts."""

    def __init__(self, alpha: float = DEFAULT_ALPHA, max_trials: int = 40,
                 run_cost_s: float = 60.0,
                 fault_plan: Optional[FaultPlan] = None,
                 infra_retries: int = 2,
                 watchdog_sim_s: float = DEFAULT_WATCHDOG_SIM_S,
                 trace: Optional[Any] = None,
                 registry: Optional[Any] = None,
                 cache: Optional[ExecutionCache] = None,
                 collapse_exclude: Iterable[str] = (),
                 observe: Optional[Any] = None) -> None:
        self.alpha = alpha
        self.max_trials = max_trials
        #: charged per execution when estimating machine time; the paper's
        #: whole-system unit tests average minutes because real clusters
        #: must boot — ours run in simulated time, so machine-time figures
        #: are (executions x run_cost_s).
        self.run_cost_s = run_cost_s
        #: chaos schedule applied to every execution (None = clean runs).
        self.fault_plan = (fault_plan
                           if fault_plan is not None and fault_plan.active
                           else None)
        #: bounded retry budget for *infrastructure* errors only; oracle
        #: failures are data and are never retried outside the §5 loop.
        self.infra_retries = max(infra_retries, 0)
        #: simulated-seconds budget per execution (the TEST_TIMEOUT cap).
        self.watchdog_sim_s = watchdog_sim_s
        #: optional repro.core.tracelog.TraceLog for fault/retry events.
        self.trace = trace
        #: parameter registry for the homogeneous default-value collapse
        #: (None = no collapse; canonical forms stay purely structural).
        self.registry = registry
        #: shared per-campaign execution cache (None = always execute).
        self.cache = cache
        #: parameters the unit test explicitly ``set``s during its
        #: pre-run: injecting their default would shadow the set, so the
        #: default-value collapse must not apply to them.
        self.collapse_exclude = frozenset(collapse_exclude)
        #: optional repro.core.observe.Observation: trial/instance spans,
        #: metric histograms, and the deterministic sim clock (advanced
        #: run_cost_s per execution plus retry backoff).
        self.obs = observe
        self.executions = 0
        self.retries_performed = 0
        #: execution-cache counters for this runner's share of the work.
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_bypasses = 0
        #: fault kind -> total injections across all executions.
        self.fault_counts: Dict[str, int] = {}
        #: extra modelled machine seconds charged by retry backoff.
        self.backoff_cost_s = 0.0

    # ------------------------------------------------------------------
    # content addressing
    # ------------------------------------------------------------------
    def canonical_form(self, assignment: Optional[Any]) -> Tuple[Any, ...]:
        """Canonical content form of ``assignment`` under this runner's
        registry and collapse exclusions (see repro.core.execcache)."""
        return canonical_assignment(assignment, registry=self.registry,
                                    no_collapse=self.collapse_exclude)

    # ------------------------------------------------------------------
    # single execution
    # ------------------------------------------------------------------
    def execute(self, test: UnitTest, assignment: Optional[Any],
                seed: int, canonical: Optional[Tuple[Any, ...]] = None
                ) -> RunOutcome:
        """Run one unit test once under ``assignment`` (None = original).

        Crash containment: the watchdog bounds simulated time, oracle
        failures (any exception from the test body) are data, and
        infrastructure errors are retried with exponential backoff up to
        ``infra_retries`` times before being reported as infrastructural.

        With an execution cache attached, a memoized outcome for the same
        (test, canonical assignment, seed) is returned without running;
        ``canonical`` lets callers that already computed the content form
        avoid recomputing it.
        """
        if self.obs is None:
            return self._execute(test, assignment, seed, canonical)
        before = self.executions
        with self.obs.span(test.full_name, kind="trial",
                           seed=seed) as span:
            outcome = self._execute(test, assignment, seed, canonical)
            span.attrs["ok"] = outcome.ok
            if self.executions == before:
                span.attrs["cached"] = True
            if outcome.retries:
                span.attrs["retries"] = outcome.retries
            if outcome.infra:
                span.attrs["infra"] = True
            if outcome.timed_out:
                span.attrs["timed_out"] = True
        return outcome

    def _execute(self, test: UnitTest, assignment: Optional[Any],
                 seed: int, canonical: Optional[Tuple[Any, ...]] = None
                 ) -> RunOutcome:
        if self.cache is not None:
            if canonical is None:
                canonical = self.canonical_form(assignment)
            cached = self.cache.lookup(test.full_name, canonical, seed)
            if cached is not None:
                self.cache_hits += 1
                if self.trace is not None:
                    self.trace.emit("exec-cache-hit",
                                    sim_at=self.machine_time_s,
                                    test=test.full_name,
                                    seed=seed, ok=cached.ok)
                return cached
            self.cache_misses += 1
        outcome = self._execute_once(test, assignment, seed, attempt=0)
        attempt = 0
        while outcome.infra and attempt < self.infra_retries:
            attempt += 1
            backoff = INFRA_BACKOFF_BASE_S * (2 ** (attempt - 1))
            self.backoff_cost_s += backoff
            self.retries_performed += 1
            if self.obs is not None:
                self.obs.advance_sim(backoff)
            if self.trace is not None:
                self.trace.emit("retry", sim_at=self.machine_time_s,
                                test=test.full_name, seed=seed,
                                attempt=attempt, backoff_s=backoff,
                                error=outcome.error_message)
            outcome = self._execute_once(test, assignment, seed,
                                         attempt=attempt)
            outcome.retries = attempt
        if self.cache is not None:
            seed_sensitive = self.fault_plan is not None or outcome.rng_used
            if not self.cache.store(test.full_name, canonical, seed, outcome,
                                    seed_sensitive=seed_sensitive):
                self.cache_bypasses += 1
        return outcome

    def _execute_once(self, test: UnitTest, assignment: Optional[Any],
                      seed: int, attempt: int) -> RunOutcome:
        self.executions += 1
        if self.obs is not None:
            self.obs.advance_sim(self.run_cost_s)
        agent = ConfAgent(assignment=assignment, record_usage=False)
        rng = _TrackedRandom(seed)
        ctx = TestContext(rng=rng, trial=seed)
        injector = self._injector(test, seed, attempt)
        try:
            with agent, fault_scope(injector), \
                    sim_time_limit(self.watchdog_sim_s):
                if injector is not None:
                    injector.check_infra("setup")
                test.fn(ctx)
        except SimTimeLimitExceeded as exc:
            outcome = RunOutcome(ok=False, error_type="TestTimeout",
                                 error_message=str(exc), timed_out=True)
        except InfrastructureError as exc:
            outcome = RunOutcome(ok=False, error_type=type(exc).__name__,
                                 error_message=str(exc), infra=True)
        except Exception as exc:  # noqa: BLE001 - oracle: any exception
            outcome = RunOutcome(ok=False, error_type=type(exc).__name__,
                                 error_message=str(exc))
        else:
            outcome = RunOutcome(ok=True)
        outcome.faults = self._collect_faults(injector)
        outcome.rng_used = rng.used
        return outcome

    def _injector(self, test: UnitTest, seed: int,
                  attempt: int) -> Optional[FaultInjector]:
        if self.fault_plan is None:
            return None
        on_fault = None
        if self.trace is not None:
            trace = self.trace

            def on_fault(kind: str, data: Dict[str, Any]) -> None:
                trace.emit("fault", sim_at=self.machine_time_s,
                           test=test.full_name, seed=seed,
                           attempt=attempt, fault=kind, **data)

        # Each (execution, attempt) draws its own schedule so hetero and
        # homo trials are hit independently and retries are not doomed to
        # repeat an injected infrastructure failure.
        return FaultInjector(self.fault_plan,
                             stable_seed(self.fault_plan.seed, seed, attempt),
                             on_fault=on_fault)

    def _collect_faults(self, injector: Optional[FaultInjector]) -> int:
        if injector is None:
            return 0
        for kind, count in injector.counts.items():
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + count
        return injector.total_faults

    # ------------------------------------------------------------------
    # Definition 3.1 first trial
    # ------------------------------------------------------------------
    def first_trial(self, test: UnitTest, assignment: HeteroAssignment
                    ) -> Tuple[RunOutcome, List[RunOutcome]]:
        """Seeds derive from execution *content*, not display labels, so
        identical executions (e.g. the all-defaults homogeneous baseline
        shared by every parameter of a test) share seeds — and therefore
        outcomes, and therefore cache slots."""
        hetero_c = self.canonical_form(assignment)
        hetero = self.execute(test, assignment,
                              execution_seed(test.full_name, hetero_c, 0),
                              canonical=hetero_c)
        homos: List[RunOutcome] = []
        for side in range(assignment.sides()):
            homo = assignment.homo_variant(side)
            homo_c = self.canonical_form(homo)
            homos.append(self.execute(
                test, homo, execution_seed(test.full_name, homo_c, 0),
                canonical=homo_c))
        return hetero, homos

    # ------------------------------------------------------------------
    # full instance evaluation
    # ------------------------------------------------------------------
    def evaluate(self, instance: TestInstance) -> InstanceResult:
        if self.obs is None:
            return self._evaluate(instance)
        with self.obs.span(instance.test.full_name, kind="instance",
                           group=instance.group,
                           strategy=instance.strategy,
                           params=list(instance.params)) as span:
            result = self._evaluate(instance)
            span.attrs["verdict"] = result.verdict
            span.attrs["executions"] = result.executions
        metrics = self.obs.metrics
        metrics.counter_inc("zc_instance_verdicts_total",
                            verdict=result.verdict)
        metrics.hist_observe("zc_instance_executions", result.executions)
        metrics.hist_observe("zc_instance_machine_seconds",
                             result.executions * self.run_cost_s)
        return result

    def _evaluate(self, instance: TestInstance) -> InstanceResult:
        start = self.executions
        hetero, homos = self.first_trial(instance.test, instance.assignment)
        if hetero.infra or any(h.infra for h in homos):
            # The harness, not the configuration, failed — even after the
            # bounded retries.  Contained: reported as INFRA_ERROR, never
            # counted as heterogeneous-unsafe evidence.
            infra_error = (hetero.error_message if hetero.infra else
                           next(h.error_message for h in homos if h.infra))
            return self._done(instance, INFRA_ERROR, start,
                              hetero_error=infra_error)
        if hetero.ok:
            return self._done(instance, PASS, start)
        if any(h.failed for h in homos):
            return self._done(instance, BASELINE_FAIL, start,
                              hetero_error=hetero.error_message)
        tally = self.confirm(instance.test, instance.assignment,
                             first_hetero=hetero, first_homos=homos)
        verdict = CONFIRMED_UNSAFE if tally.significant(self.alpha) else FLAKY_DISMISSED
        return self._done(instance, verdict, start,
                          hetero_error=hetero.error_message, tally=tally)

    def confirm(self, test: UnitTest, assignment: HeteroAssignment,
                first_hetero: RunOutcome,
                first_homos: List[RunOutcome]) -> TrialTally:
        """Multi-trial confirmation loop for a suspicious instance.

        Trials of a seed-insensitive (rng-free, fault-free) test are
        byte-identical re-executions; with a cache attached they cost one
        execution total instead of one per trial.
        """
        tally = TrialTally()
        tally.record_hetero(first_hetero.failed)
        for outcome in first_homos:
            tally.record_homo(outcome.failed)
        trial = 1
        void_trials = 0
        sides = assignment.sides()
        hetero_c = self.canonical_form(assignment)
        homo_cs = [self.canonical_form(assignment.homo_variant(side))
                   for side in range(sides)]
        while (not tally.significant(self.alpha)
               and tally.hetero_trials < self.max_trials
               and not tally.hopeless(self.alpha, self.max_trials)):
            hetero = self.execute(
                test, assignment,
                execution_seed(test.full_name, hetero_c, trial),
                canonical=hetero_c)
            side = trial % sides
            homo = self.execute(
                test, assignment.homo_variant(side),
                execution_seed(test.full_name, homo_cs[side], trial),
                canonical=homo_cs[side])
            trial += 1
            if hetero.infra or homo.infra:
                # A persistent harness failure is not evidence either way;
                # the trial is void, with a bound so confirmation cannot
                # spin against a dead environment.
                void_trials += 1
                if void_trials >= self.max_trials:
                    break
                continue
            tally.record_hetero(hetero.failed)
            tally.record_homo(homo.failed)
        return tally

    # ------------------------------------------------------------------
    def _done(self, instance: TestInstance, verdict: str, start_executions: int,
              hetero_error: str = "", tally: Optional[TrialTally] = None) -> InstanceResult:
        return InstanceResult(instance=instance, verdict=verdict,
                              hetero_error=hetero_error, tally=tally,
                              executions=self.executions - start_executions)

    # ------------------------------------------------------------------
    @property
    def machine_time_s(self) -> float:
        return self.executions * self.run_cost_s + self.backoff_cost_s
