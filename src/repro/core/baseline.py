"""Baseline comparison: track heterogeneous-safety across versions.

The paper notes campaigns "do not need to be run frequently"; the
operational pattern is: run once, record the verdicts, and on the next
release compare — new unsafe parameters are regressions, disappeared
ones are fixes (or lost test coverage).  This module implements that
record/compare cycle over the JSON report format.

CLI: ``python -m repro campaign hdfs --json baseline.json`` once, then
``python -m repro campaign hdfs --compare baseline.json`` in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.report import AppReport, app_report_to_dict


@dataclass(frozen=True)
class BaselineDiff:
    """Outcome of comparing a fresh report against a stored baseline."""

    app: str
    new_unsafe: List[str]
    fixed_unsafe: List[str]
    new_false_positives: List[str]
    resolved_false_positives: List[str]

    @property
    def has_regressions(self) -> bool:
        return bool(self.new_unsafe)

    @property
    def clean(self) -> bool:
        return not (self.new_unsafe or self.fixed_unsafe
                    or self.new_false_positives
                    or self.resolved_false_positives)

    def render(self) -> str:
        if self.clean:
            return ("baseline match: no heterogeneous-safety changes in %r"
                    % self.app)
        lines = ["baseline drift in %r:" % self.app]
        for label, params in (
                ("NEW UNSAFE (regressions)", self.new_unsafe),
                ("no longer unsafe (fixed, or coverage lost)",
                 self.fixed_unsafe),
                ("new false positives", self.new_false_positives),
                ("resolved false positives", self.resolved_false_positives)):
            for param in params:
                lines.append("  %-45s %s" % (label, param))
        return "\n".join(lines)


def save_baseline(report: AppReport, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(app_report_to_dict(report), handle, indent=2)


def load_baseline(path: str) -> Dict[str, object]:
    with open(path) as handle:
        return json.load(handle)


def compare_to_baseline(report: AppReport,
                        baseline: Mapping[str, object]) -> BaselineDiff:
    """Diff a fresh report against a stored one (same application)."""
    if baseline.get("app") != report.app:
        raise ValueError("baseline is for %r, report is for %r"
                         % (baseline.get("app"), report.app))
    old_unsafe = set(baseline.get("true_problems", ()))
    old_fp = set(baseline.get("false_positives", ()))
    new_unsafe = {v.param for v in report.true_problems}
    new_fp = {v.param for v in report.false_positives}
    return BaselineDiff(
        app=report.app,
        new_unsafe=sorted(new_unsafe - old_unsafe),
        fixed_unsafe=sorted(old_unsafe - new_unsafe),
        new_false_positives=sorted(new_fp - old_fp),
        resolved_false_positives=sorted(old_fp - new_fp))
