"""Registry wiring audit: WIRED / UNREAD / READ_BUT_INERT verdicts.

The campaigns assume every registry parameter is actually wired into the
runtime, but registries drift: "paper parameters" survive in config long
after the code that read them is gone, silently invalidating
reproduction and ablation attempts.  The audit inverts the pre-run
phase's read recording into a per-parameter verdict:

* ``WIRED``          — some runtime path reads the parameter *and* its
  value demonstrably alters at least one outcome stream;
* ``UNREAD``         — the parameter is never read by any runtime path
  across the whole corpus;
* ``READ_BUT_INERT`` — the parameter is read, but differential probes
  found no assignment (heterogeneous or homogeneous) whose behaviour
  diverges from the original run.

**Differential probes.**  For every reading test, group, §4 strategy and
value pair the TestGenerator would produce, the auditor executes the
test under the assignment *and all of its homogeneous sides* and
compares a behavioural fingerprint against the original-configuration
baseline.  Heterogeneous variants are essential: a wire-format parameter
(e.g. a checksum type) keeps both sides agreeing under any homogeneous
change and only misbehaves heterogeneously — homo-only probing would
flag exactly the paper's Table-3 findings as inert.  The fingerprint
deliberately exceeds pass/fail: it folds in the full read-site count
map, started node groups, explicitly-set parameters and the number of
``ctx.rng`` draws, so a value that changes *behaviour* without flipping
the oracle still counts as wired.  Baseline and variants run under the
same content-derived seed (:func:`repro.core.execcache.execution_seed`
over the ORIGINAL form), making the rng stream a constant of the
comparison — any divergence is attributable to the injected values.

**Probe economy.**  Probes reuse the execution cache's canonical forms:
a homogeneous variant that collapses onto ``ORIGINAL`` (injecting a
default the test never sets) is behaviourally identical to the baseline
by construction and is skipped outright (*collapsed*), and outcomes are
memoized per ``(test, canonical fingerprint)`` so the homogeneous sides
shared across strategies and parameters execute once (*cache hits*).
The first divergence short-circuits the sweep.

Parameters that are read only through unmappable configuration objects
or only by unusable tests cannot be probed soundly (injection through an
uncertain conf would fabricate divergence); they stay conservatively
``WIRED``.  Intentionally-dormant parameters are exempted from flagging
with the ``audit-exempt`` registry tag (see docs/AUDIT.md) — their
verdict is still computed and reported.

Audit executions are accounted separately from campaign executions
(``zc_audit_*`` metrics, ``AuditStats.machine_time_s``) so campaign
reports with the audit enabled stay byte-identical to seed reports in
their unsafe-findings sections.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set,
                    Tuple)

from repro.common.params import ParamDef, ParamRegistry
from repro.common.simulation import SimTimeLimitExceeded, sim_time_limit
from repro.core.confagent import UNCERTAIN, UNIT_TEST, ConfAgent
from repro.core.execcache import (ORIGINAL, canonical_assignment,
                                  execution_seed, fingerprint)
from repro.core.prerun import TestProfile
from repro.core.registry import TestContext
from repro.core.runner import DEFAULT_WATCHDOG_SIM_S
from repro.core.testgen import HeteroAssignment, TestGenerator

#: audit verdicts
WIRED = "WIRED"
UNREAD = "UNREAD"
READ_BUT_INERT = "READ_BUT_INERT"

#: ParamDef tag that exempts an intentionally-dormant parameter from the
#: flagged list (its verdict is still computed and reported).
AUDIT_EXEMPT_TAG = "audit-exempt"

#: tags marking the living audit fixtures planted in app registries.
FIXTURE_UNREAD_TAG = "audit-fixture-unread"
FIXTURE_INERT_TAG = "audit-fixture-inert"


def _owner_label(node_type: str, node_index: int) -> str:
    """Human-readable read-site component: ``NameNode#0``, or the
    pseudo-entities ``unit-test`` / ``uncertain``."""
    if node_type == UNIT_TEST:
        return "unit-test"
    if node_type == UNCERTAIN:
        return "uncertain"
    return "%s#%d" % (node_type, node_index)


@dataclass(frozen=True)
class ReadSite:
    """One attributed read site: which component of which test read the
    parameter, and how many ``get`` calls it issued during the pre-run."""

    test: str
    owner: str
    count: int

    def to_list(self) -> List[Any]:
        return [self.test, self.owner, self.count]


@dataclass
class ParamAudit:
    """The audit verdict for one registry parameter."""

    param: str
    verdict: str
    exempt: bool = False
    #: differential probe comparisons performed before the verdict
    #: settled (0 for UNREAD; small for WIRED thanks to short-circuit).
    probes: int = 0
    #: first observed divergence (WIRED), or why probing was impossible.
    detail: str = ""
    read_sites: Tuple[ReadSite, ...] = ()

    @property
    def flagged(self) -> bool:
        return self.verdict != WIRED and not self.exempt

    def to_dict(self) -> Dict[str, Any]:
        return {
            "param": self.param,
            "verdict": self.verdict,
            "exempt": self.exempt,
            "probes": self.probes,
            "detail": self.detail,
            "read_sites": [site.to_list() for site in self.read_sites],
        }


@dataclass
class AuditStats:
    """Wiring-audit results for one application registry.

    ``machine_time_s`` models probe cost (probe executions x run_cost_s)
    and is kept separate from ``AppReport.machine_time_s`` so enabling
    the audit never perturbs campaign execution accounting.
    """

    params_total: int = 0
    wired: int = 0
    unread: int = 0
    inert: int = 0
    #: parameters whose verdict would flag them but that carry the
    #: ``audit-exempt`` tag (intentionally dormant).
    exempt_flagged: int = 0
    probe_executions: int = 0
    probe_cache_hits: int = 0
    probes_collapsed: int = 0
    machine_time_s: float = 0.0
    findings: Tuple[ParamAudit, ...] = ()

    def flagged(self) -> Tuple[ParamAudit, ...]:
        """Non-exempt UNREAD / READ_BUT_INERT findings, sorted by
        (verdict, parameter) for stable reporting."""
        order = {UNREAD: 0, READ_BUT_INERT: 1}
        return tuple(sorted((f for f in self.findings if f.flagged),
                            key=lambda f: (order[f.verdict], f.param)))

    def verdict_for(self, param: str) -> Optional[str]:
        for finding in self.findings:
            if finding.param == param:
                return finding.verdict
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "params_total": self.params_total,
            "wired": self.wired,
            "unread": self.unread,
            "read_but_inert": self.inert,
            "exempt_flagged": self.exempt_flagged,
            "probe_executions": self.probe_executions,
            "probe_cache_hits": self.probe_cache_hits,
            "probes_collapsed": self.probes_collapsed,
            "machine_time_s": self.machine_time_s,
            "flagged": [f.to_dict() for f in self.flagged()],
            "verdicts": {f.param: f.verdict for f in self.findings},
        }


@dataclass(frozen=True)
class _Probe:
    """One memoized probe execution, reduced to what comparison needs."""

    fingerprint: str
    ok: bool
    error_type: str
    timed_out: bool


class _CountingRandom(random.Random):
    """Counts every draw.  Unlike ``runner._TrackedRandom`` (which only
    needs a used/unused bit and rebinds to the C implementation under
    the fast path), the *number* of draws is part of the behavioural
    fingerprint, so each one must pass through the counter."""

    def __init__(self, seed: int) -> None:
        super().__init__(seed)
        self.draws = 0

    def random(self) -> float:
        self.draws += 1
        return super().random()

    def getrandbits(self, k: int) -> int:
        self.draws += 1
        return super().getrandbits(k)


class WiringAuditor:
    """Runs the wiring audit over one registry and its pre-run profiles."""

    def __init__(self, registry: ParamRegistry,
                 profiles: Sequence[TestProfile],
                 generator: Optional[TestGenerator] = None,
                 watchdog_sim_s: float = DEFAULT_WATCHDOG_SIM_S,
                 run_cost_s: float = 60.0,
                 param_allowed: Optional[Callable[[str], bool]] = None
                 ) -> None:
        self.registry = registry
        self.profiles = list(profiles)
        self.generator = (generator if generator is not None
                          else TestGenerator(registry))
        self.watchdog_sim_s = watchdog_sim_s
        self.run_cost_s = run_cost_s
        self.param_allowed = param_allowed
        #: (test full name, canonical fingerprint) -> memoized probe.
        self._memo: Dict[Tuple[str, str], _Probe] = {}
        self.probe_executions = 0
        self.probe_cache_hits = 0
        self.probes_collapsed = 0

    # ------------------------------------------------------------------
    # probe execution
    # ------------------------------------------------------------------
    def _probe(self, profile: TestProfile, assignment: Optional[Any],
               canonical: Tuple[Any, ...]) -> _Probe:
        test = profile.test
        key = (test.full_name, fingerprint(canonical))
        memoized = self._memo.get(key)
        if memoized is not None:
            self.probe_cache_hits += 1
            return memoized
        self.probe_executions += 1
        # Baseline and every variant share the baseline's content-derived
        # seed: the rng stream is a constant of the comparison, so any
        # fingerprint divergence is attributable to the injected values.
        seed = execution_seed(test.full_name, ORIGINAL, 0)
        agent = ConfAgent(assignment=assignment, record_usage=True)
        rng = _CountingRandom(seed)
        ctx = TestContext(rng=rng, trial=seed)
        ok, error_type, error_message, timed_out = True, "", "", False
        try:
            with agent, sim_time_limit(self.watchdog_sim_s):
                test.fn(ctx)
        except SimTimeLimitExceeded as exc:
            ok, timed_out = False, True
            error_type, error_message = "TestTimeout", str(exc)
        except Exception as exc:  # noqa: BLE001 - oracle: any exception
            ok = False
            error_type, error_message = type(exc).__name__, str(exc)
        behaviour = (
            ok, error_type, error_message, timed_out, rng.draws,
            tuple(sorted((owner, index, name, count)
                         for (owner, index), reads
                         in agent.read_sites.items()
                         for name, count in reads.items())),
            tuple(sorted(agent.node_counts.items())),
            tuple(sorted(agent.set_params)),
        )
        probe = _Probe(fingerprint=fingerprint(behaviour), ok=ok,
                       error_type=error_type, timed_out=timed_out)
        self._memo[key] = probe
        return probe

    @staticmethod
    def _outcome_label(probe: _Probe) -> str:
        if probe.ok:
            return "pass"
        return probe.error_type or "fail"

    def _describe(self, baseline: _Probe, outcome: _Probe,
                  profile: TestProfile, group: str, strategy: str,
                  variant: str, pair: Tuple[Any, Any]) -> str:
        if baseline.ok != outcome.ok or baseline.error_type != outcome.error_type:
            delta = "outcome %s -> %s" % (self._outcome_label(baseline),
                                          self._outcome_label(outcome))
        else:
            delta = "behaviour stream diverged (reads/rng/nodes/sets)"
        return "%s [%s/%s/%s] pair=%r: %s" % (
            profile.test.full_name, group, strategy, variant, pair, delta)

    # ------------------------------------------------------------------
    # per-parameter sweep
    # ------------------------------------------------------------------
    def _probe_param(self, param: ParamDef,
                     readers: Sequence[TestProfile]
                     ) -> Tuple[str, int, str]:
        """Sweep every (reading test, group, strategy, pair) the campaign
        would generate, hetero variant plus all homogeneous sides, and
        short-circuit to WIRED on the first behavioural divergence."""
        pairs = self.generator.value_pairs(param)
        if not pairs:
            return WIRED, 0, ("no candidate value pairs to probe with; "
                              "not probeable, conservatively WIRED")
        probes = 0
        probeable = False
        for profile in readers:
            if not profile.usable:
                continue
            groups = [g for g in sorted(profile.groups)
                      if param.name in profile.testable_params(g)]
            if not groups:
                continue
            probeable = True
            baseline = self._probe(profile, None, ORIGINAL)
            for group in groups:
                strategies = self.generator.strategies_for_group(
                    profile.groups[group])
                for pair in pairs:
                    for strategy in strategies:
                        hetero = HeteroAssignment((self.generator.assignment(
                            param, group, strategy, pair),))
                        variants: List[Tuple[str, Any]] = [("hetero", hetero)]
                        for side in range(hetero.sides()):
                            variants.append(("homo[%d]" % side,
                                             hetero.homo_variant(side)))
                        for label, variant in variants:
                            canonical = canonical_assignment(
                                variant, registry=self.registry,
                                no_collapse=profile.explicit_sets)
                            if canonical == ORIGINAL:
                                # Injecting the default where the test
                                # never sets it is indistinguishable from
                                # not injecting — identical to the
                                # baseline by construction.
                                self.probes_collapsed += 1
                                continue
                            probes += 1
                            outcome = self._probe(profile, variant,
                                                  canonical)
                            if outcome.fingerprint != baseline.fingerprint:
                                return WIRED, probes, self._describe(
                                    baseline, outcome, profile, group,
                                    strategy, label, pair)
        if not probeable:
            return WIRED, probes, ("read only through uncertain confs or "
                                   "unusable tests; not probeable, "
                                   "conservatively WIRED")
        return READ_BUT_INERT, probes, (
            "no divergence across %d differential probes" % probes)

    # ------------------------------------------------------------------
    # verdict engine
    # ------------------------------------------------------------------
    def run(self) -> AuditStats:
        sites: Dict[str, List[ReadSite]] = {}
        readers: Dict[str, List[TestProfile]] = {}
        for profile in self.profiles:
            seen: Set[str] = set()
            for (owner, index), counts in sorted(profile.read_sites.items()):
                label = _owner_label(owner, index)
                for name in sorted(counts):
                    sites.setdefault(name, []).append(ReadSite(
                        test=profile.test.full_name, owner=label,
                        count=counts[name]))
                    if name not in seen:
                        seen.add(name)
                        readers.setdefault(name, []).append(profile)
        findings: List[ParamAudit] = []
        for param in sorted(self.registry, key=lambda p: p.name):
            if (self.param_allowed is not None
                    and not self.param_allowed(param.name)):
                continue
            param_sites = tuple(sites.get(param.name, ()))
            if not param_sites:
                verdict, probes, detail = UNREAD, 0, (
                    "never read by any runtime path across the corpus")
            else:
                verdict, probes, detail = self._probe_param(
                    param, readers.get(param.name, ()))
            findings.append(ParamAudit(
                param=param.name, verdict=verdict,
                exempt=AUDIT_EXEMPT_TAG in param.tags,
                probes=probes, detail=detail, read_sites=param_sites))
        stats = AuditStats(
            params_total=len(findings),
            wired=sum(1 for f in findings if f.verdict == WIRED),
            unread=sum(1 for f in findings if f.verdict == UNREAD),
            inert=sum(1 for f in findings
                      if f.verdict == READ_BUT_INERT),
            exempt_flagged=sum(1 for f in findings
                               if f.verdict != WIRED and f.exempt),
            probe_executions=self.probe_executions,
            probe_cache_hits=self.probe_cache_hits,
            probes_collapsed=self.probes_collapsed,
            machine_time_s=self.probe_executions * self.run_cost_s,
            findings=tuple(findings))
        return stats


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def audit_campaign(campaign: Any,
                   profiles: Sequence[TestProfile]) -> AuditStats:
    """Audit phase of a running campaign: reuse its registry, generator
    and pre-run profiles (no extra pre-run executions)."""
    config = campaign.config
    auditor = WiringAuditor(campaign.registry, profiles,
                            generator=campaign.generator,
                            watchdog_sim_s=config.watchdog_sim_s,
                            run_cost_s=config.run_cost_s,
                            param_allowed=config.param_allowed)
    return auditor.run()


def audit_app(app: str, max_value_pairs: int = 3,
              watchdog_sim_s: float = DEFAULT_WATCHDOG_SIM_S,
              run_cost_s: float = 60.0,
              params: Optional[Sequence[str]] = None) -> AuditStats:
    """Standalone audit of one application (the ``repro audit`` path):
    pre-runs the corpus, then runs the verdict engine."""
    from repro.apps import catalog
    from repro.core.prerun import prerun_corpus
    from repro.core.registry import load_all_suites

    spec = catalog.spec_for(app)
    corpus = load_all_suites()
    profiles = prerun_corpus(corpus.for_app(app))
    generator = TestGenerator(spec.registry,
                              dependency_rules=spec.dependency_rules,
                              max_value_pairs=max_value_pairs)
    allowed = None
    if params is not None:
        wanted = frozenset(params)
        allowed = lambda name: name in wanted  # noqa: E731
    auditor = WiringAuditor(spec.registry, profiles, generator=generator,
                            watchdog_sim_s=watchdog_sim_s,
                            run_cost_s=run_cost_s, param_allowed=allowed)
    return auditor.run()
