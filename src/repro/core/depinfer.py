"""Automatic parameter-dependency inference (§4's future work).

"Currently TestGenerator requires the developer's effort to generate
these rules ... Future work could extract the relationship between
different parameters automatically, by relying on parameter dependence
analysis."

This module implements a dynamic version of that analysis: run a unit
test once per candidate value of a *driver* parameter (homogeneously,
recording usage) and diff the sets of parameters read.  A parameter that
is only read under one of the driver's values *depends* on it — e.g.
``mapreduce.map.output.compress.codec`` is applied only when
``mapreduce.map.output.compress`` is true, and the NameNode binds
``dfs.namenode.https-address`` only under ``dfs.http.policy =
HTTPS_ONLY``.  Each finding is emitted as a candidate
:class:`~repro.core.testgen.DependencyRule` pinning the enabling value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (Any, Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple)

from repro.common.params import ParamRegistry
from repro.core.confagent import ConfAgent
from repro.core.prerun import PRERUN_SEED
from repro.core.registry import TestContext, UnitTest
from repro.core.testgen import DependencyRule, HomoAssignment


@dataclass(frozen=True)
class InferredDependency:
    """``dependent`` is only exercised when ``driver == enabling_value``."""

    driver: str
    enabling_value: Any
    dependent: str

    def as_rules(self, registry: ParamRegistry) -> List[DependencyRule]:
        """Rules for TestGenerator: when testing the *dependent*, pin the
        driver to its enabling value (for every candidate of the
        dependent)."""
        param = registry.maybe_get(self.dependent)
        if param is None:
            return []
        return [DependencyRule(self.dependent, value, self.driver,
                               self.enabling_value)
                for value in param.candidate_values()]


def _used_params(test: UnitTest, overrides: Dict[str, Any]) -> Set[str]:
    assignment = HomoAssignment(values=tuple(sorted(overrides.items())))
    agent = ConfAgent(assignment=assignment, record_usage=True)
    ctx = TestContext(rng=random.Random(PRERUN_SEED), trial=-1)
    with agent:
        try:
            test.fn(ctx)
        except Exception:  # noqa: BLE001 - a failing variant still has reads
            pass
    return {name for params in agent.usage.values() for name in params}


def default_drivers(registry: ParamRegistry) -> List[str]:
    """Driver candidates when none are named: every boolean/enumerated
    parameter (the kinds that gate features on and off)."""
    return [param.name for param in registry
            if param.kind in ("bool", "enum")]


def infer_dependencies(test: UnitTest, registry: ParamRegistry,
                       drivers: Optional[Sequence[str]] = None
                       ) -> List[InferredDependency]:
    """Infer value-conditional reads on one unit test.

    For each driver parameter (defaults to every bool/enum in the
    registry), the test is executed once per candidate value
    (homogeneously — this is an analysis pass, not a hetero test);
    parameters read under exactly one value are reported as depending on
    it.
    """
    if drivers is None:
        drivers = default_drivers(registry)
    findings: List[InferredDependency] = []
    for driver in drivers:
        param = registry.maybe_get(driver)
        if param is None:
            continue
        candidates = param.candidate_values()
        if len(candidates) < 2:
            continue
        usage_by_value: List[Tuple[Any, Set[str]]] = [
            (value, _used_params(test, {driver: value}))
            for value in candidates]
        for value, used in usage_by_value:
            others: Set[str] = set()
            for other_value, other_used in usage_by_value:
                if other_value != value:
                    others |= other_used
            for dependent in sorted(used - others - {driver}):
                findings.append(InferredDependency(
                    driver=driver, enabling_value=value,
                    dependent=dependent))
    return findings


def infer_rules_for_corpus(tests: Iterable[UnitTest],
                           registry: ParamRegistry,
                           drivers: Sequence[str]) -> List[DependencyRule]:
    """Aggregate inferred dependencies over a corpus into TestGenerator
    rules, deduplicated."""
    seen: Set[Tuple[str, Any, str, Any]] = set()
    rules: List[DependencyRule] = []
    for test in tests:
        for finding in infer_dependencies(test, registry, drivers):
            for rule in finding.as_rules(registry):
                key = (rule.param, rule.value, rule.companion,
                       rule.companion_value)
                if key not in seen:
                    seen.add(key)
                    rules.append(rule)
    return rules
