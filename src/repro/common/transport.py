"""Length-prefixed JSON framing over TCP, with deterministic chaos hooks.

The distributed campaign protocol (:mod:`repro.core.distrib`) moves
small JSON messages — leases, heartbeats, serialized ProfileOutcomes —
between a coordinator and its remote workers.  This module owns the
byte-level concerns so the protocol layer never touches a socket
directly:

* **Framing.**  Every message is ``4-byte big-endian length + UTF-8
  JSON``.  Short reads, EOF mid-frame, and oversized frames surface as
  :class:`TransportError` instead of garbled JSON.
* **Chaos.**  A frozen :class:`NetFaultPlan` injects faults on the
  *real* socket layer, deterministically: every decision is drawn from
  :func:`repro.common.faults.fault_seed` over ``(plan seed, connection
  id, frame index)``, so the same plan against the same traffic produces
  the same drops/delays/partitions on every run.  Three fault kinds:

  - ``drop``       — an outbound frame is silently discarded; the peer's
    reply never comes and the caller's read deadline fires;
  - ``delay``      — an outbound frame is held back for a bounded time
    before hitting the wire;
  - ``partition``  — after N outbound frames the link is severed (the
    socket is closed mid-conversation); every later use of the
    transport fails like a genuine network partition.

The chaos sits *inside* :meth:`FrameTransport.send`, not in the protocol
layer: redelivery, reconnection, and duplicate suppression are then
exercised against real connection failures, which is the point.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.common.errors import ReproError
from repro.common.faults import fault_seed

#: Frame length prefix: 4-byte unsigned big-endian.
_HEADER = struct.Struct(">I")

#: Upper bound on one frame; a corrupt/hostile length prefix must not
#: make the receiver allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


class TransportError(ReproError):
    """The connection is unusable (EOF, reset, injected partition)."""


class TransportTimeout(TransportError):
    """No frame arrived within the read deadline (connection may still
    be alive — the caller decides whether that means *dead peer*)."""


@dataclass(frozen=True)
class NetFaultPlan:
    """Declarative transport chaos: probabilities + a seed.

    Frozen and inert by default, like :class:`repro.common.faults.FaultPlan`
    (its design template).  Decisions are per *outbound frame* and
    deterministic in ``(seed, connection id, frame index)``; two runs
    that send the same frames over connections with the same ids observe
    identical chaos.
    """

    seed: int = 0
    #: probability that an outbound frame is silently discarded.
    drop_prob: float = 0.0
    #: probability that an outbound frame is held back before sending.
    delay_prob: float = 0.0
    delay_range_s: Tuple[float, float] = (0.01, 0.25)
    #: sever the link after this many outbound frames (0 = never).  The
    #: count is per transport, so a reconnected link is severed again
    #: after another N frames — a deterministic flapping partition.
    partition_after: int = 0

    @property
    def active(self) -> bool:
        return bool(self.drop_prob or self.delay_prob
                    or self.partition_after)

    # -- per-frame decisions (pure; unit-testable without sockets) ------
    def drop_decision(self, conn_id: str, frame_index: int) -> bool:
        if not self.drop_prob:
            return False
        import random
        rng = random.Random(fault_seed(self.seed, "net-drop", conn_id,
                                       frame_index))
        return rng.random() < self.drop_prob

    def delay_decision(self, conn_id: str, frame_index: int) -> float:
        if not self.delay_prob:
            return 0.0
        import random
        rng = random.Random(fault_seed(self.seed, "net-delay", conn_id,
                                       frame_index))
        if rng.random() >= self.delay_prob:
            return 0.0
        low, high = self.delay_range_s
        return rng.uniform(low, high)

    def partition_decision(self, frame_index: int) -> bool:
        return bool(self.partition_after
                    and frame_index >= self.partition_after)


def net_fault_plan_from_dict(record: Optional[Dict[str, Any]]
                             ) -> Optional[NetFaultPlan]:
    """Rebuild a plan from its ``asdict`` form (JSON turns the tuple
    field into a list)."""
    if not record:
        return None
    data = dict(record)
    if "delay_range_s" in data:
        data["delay_range_s"] = tuple(data["delay_range_s"])
    return NetFaultPlan(**data)


class FrameTransport:
    """One framed JSON connection, with optional injected chaos.

    ``send`` is thread-safe (the worker's heartbeat thread shares the
    transport with its request loop); ``recv`` must stay single-reader.
    ``on_fault(kind)`` is invoked for every injected fault so the
    protocol layer can count them into its stats.
    """

    def __init__(self, sock: socket.socket, conn_id: str = "",
                 plan: Optional[NetFaultPlan] = None,
                 on_fault: Optional[Callable[[str], None]] = None) -> None:
        self.sock = sock
        self.conn_id = conn_id
        self.plan = plan if plan is not None and plan.active else None
        self.on_fault = on_fault
        self.frames_sent = 0
        self.frames_received = 0
        #: injected fault kind -> count (observability, not behaviour).
        self.fault_counts: Dict[str, int] = {}
        self._send_lock = threading.Lock()
        self._closed = False
        #: bytes of the in-progress inbound frame (header + payload so
        #: far).  A read deadline can fire mid-frame; the bytes already
        #: pulled off the stream stay here so the next ``recv`` resumes
        #: the same frame instead of parsing its payload as a header.
        self._rx_buf = bytearray()
        #: payload length of the in-progress frame, once the header is
        #: complete (None while still reading the header).
        self._rx_frame_len: Optional[int] = None
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP socket (tests)
            pass

    # ------------------------------------------------------------------
    def _count_fault(self, kind: str) -> None:
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        if self.on_fault is not None:
            self.on_fault(kind)

    def send(self, message: Dict[str, Any]) -> None:
        payload = json.dumps(message, sort_keys=True).encode("utf-8")
        if len(payload) > MAX_FRAME_BYTES:
            raise TransportError("frame of %d bytes exceeds the %d-byte "
                                 "limit" % (len(payload), MAX_FRAME_BYTES))
        with self._send_lock:
            if self._closed:
                raise TransportError("transport is closed")
            index = self.frames_sent
            self.frames_sent += 1
            plan = self.plan
            if plan is not None:
                if plan.partition_decision(index):
                    self._count_fault("partition")
                    self._close_locked()
                    raise TransportError(
                        "injected partition: link severed after %d frames"
                        % index)
                if plan.drop_decision(self.conn_id, index):
                    self._count_fault("drop")
                    return  # the frame vanishes; the peer sees nothing
                delay = plan.delay_decision(self.conn_id, index)
                if delay > 0.0:
                    self._count_fault("delay")
                    time.sleep(delay)
            try:
                self.sock.sendall(_HEADER.pack(len(payload)) + payload)
            except OSError as exc:
                raise TransportError("send failed: %s" % exc)

    def recv(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        try:
            self.sock.settimeout(timeout)
        except OSError as exc:
            raise TransportError("socket unusable: %s" % exc)
        if self._rx_frame_len is None:
            self._fill(_HEADER.size)
            (length,) = _HEADER.unpack(bytes(self._rx_buf[:_HEADER.size]))
            if length > MAX_FRAME_BYTES:
                raise TransportError("peer announced a %d-byte frame (limit %d)"
                                     % (length, MAX_FRAME_BYTES))
            self._rx_frame_len = length
        self._fill(_HEADER.size + self._rx_frame_len)
        payload = bytes(self._rx_buf[_HEADER.size:])
        self._rx_buf.clear()
        self._rx_frame_len = None
        self.frames_received += 1
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise TransportError("undecodable frame: %s" % exc)
        if not isinstance(message, dict):
            raise TransportError("frame is not a JSON object: %r"
                                 % type(message).__name__)
        return message

    def _fill(self, count: int) -> None:
        """Grow ``_rx_buf`` to ``count`` bytes, preserving what is already
        buffered when the read deadline fires so a retried ``recv`` resumes
        the in-progress frame in sync with the stream."""
        while len(self._rx_buf) < count:
            try:
                chunk = self.sock.recv(count - len(self._rx_buf))
            except socket.timeout:
                raise TransportTimeout("no frame within the read deadline")
            except OSError as exc:
                raise TransportError("recv failed: %s" % exc)
            if not chunk:
                raise TransportError("connection closed by peer")
            self._rx_buf.extend(chunk)

    # ------------------------------------------------------------------
    def _close_locked(self) -> None:
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - already closed
            pass

    def close(self) -> None:
        # A supervisor thread closes the transport to unblock a sender
        # stuck in sendall() on a full kernel buffer — so the shutdown
        # must happen *before* taking _send_lock, which that sender
        # holds.  The fd itself is reclaimed under the lock afterwards.
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        with self._send_lock:
            self._close_locked()

    @property
    def closed(self) -> bool:
        return self._closed


# ---------------------------------------------------------------------------
# connection helpers
# ---------------------------------------------------------------------------
def parse_address(address: str, default_host: str = "127.0.0.1"
                  ) -> Tuple[str, int]:
    """``"HOST:PORT"``, ``":PORT"`` or bare ``"PORT"`` -> (host, port)."""
    text = address.strip()
    if ":" in text:
        host, _, port_text = text.rpartition(":")
        host = host or default_host
    else:
        host, port_text = default_host, text
    try:
        port = int(port_text)
    except ValueError:
        raise TransportError("invalid address %r (want [HOST:]PORT)"
                             % address)
    if not 0 <= port <= 65535:
        raise TransportError("port %d out of range in %r" % (port, address))
    return host, port


def connect(host: str, port: int, timeout: float = 5.0,
            conn_id: str = "", plan: Optional[NetFaultPlan] = None,
            on_fault: Optional[Callable[[str], None]] = None
            ) -> FrameTransport:
    """Dial and wrap; connection failures surface as TransportError."""
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise TransportError("connect to %s:%d failed: %s"
                             % (host, port, exc))
    sock.settimeout(None)
    return FrameTransport(sock, conn_id=conn_id, plan=plan, on_fault=on_fault)
