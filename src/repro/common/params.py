"""Configuration parameter definitions and per-application registries.

A :class:`ParamDef` describes one parameter: its type ("kind"), default
value, and — for TestGenerator's value-selection step (§4) — an optional
explicit list of *candidate values* worth testing.  When no candidates are
given, :func:`default_candidates` synthesises them with the paper's rules:
booleans test both values; numeric parameters test the default, a value
much larger, a value much smaller, and special sentinels like 0/-1 when
they are meaningful; enumerations test every documented value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

BOOL = "bool"
INT = "int"
FLOAT = "float"
STR = "str"
ENUM = "enum"
SIZE = "size"          # bytes
DURATION_MS = "duration_ms"
DURATION_S = "duration_s"

_NUMERIC_KINDS = (INT, FLOAT, SIZE, DURATION_MS, DURATION_S)


@dataclass(frozen=True)
class ParamDef:
    """Definition of one configuration parameter."""

    name: str
    kind: str
    default: Any
    description: str = ""
    candidates: Optional[Tuple[Any, ...]] = None
    #: enum values; required when kind == ENUM.
    values: Optional[Tuple[Any, ...]] = None
    #: free-form tags ("security", "heartbeat", ...) used in reports.
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.kind == ENUM and not self.values:
            raise ValueError("enum parameter %s needs values" % self.name)

    def candidate_values(self) -> Tuple[Any, ...]:
        """Values TestGenerator will consider for this parameter."""
        if self.candidates is not None:
            return self.candidates
        return default_candidates(self)


def default_candidates(param: ParamDef) -> Tuple[Any, ...]:
    """Synthesise candidate values per the paper's §4 selection rules."""
    if param.kind == BOOL:
        return (True, False)
    if param.kind == ENUM:
        return tuple(param.values or ())
    if param.kind in _NUMERIC_KINDS:
        default = param.default
        if default in (0, -1, None):
            base = 1000
        else:
            base = default
        much_larger = base * 100
        much_smaller = max(base // 100, 1)
        out: List[Any] = []
        for value in (default, much_larger, much_smaller):
            if value is not None and value not in out:
                out.append(value)
        return tuple(out)
    if param.kind == STR:
        # Without documentation-listed values, a lone string parameter is
        # not varied (the paper selects documented values only).
        return (param.default,)
    raise ValueError("unknown parameter kind %r" % param.kind)


class ParamRegistry:
    """All parameters known to one application (its ``*-default.xml``)."""

    def __init__(self, app: str) -> None:
        self.app = app
        self._params: Dict[str, ParamDef] = {}

    def register(self, param: ParamDef) -> ParamDef:
        if param.name in self._params:
            raise ValueError("duplicate parameter %s in %s" % (param.name, self.app))
        self._params[param.name] = param
        return param

    def define(self, name: str, kind: str, default: Any, **kwargs: Any) -> ParamDef:
        return self.register(ParamDef(name=name, kind=kind, default=default, **kwargs))

    def get(self, name: str) -> ParamDef:
        return self._params[name]

    def maybe_get(self, name: str) -> Optional[ParamDef]:
        return self._params.get(name)

    def default_of(self, name: str) -> Any:
        return self._params[name].default

    def __contains__(self, name: str) -> bool:
        return name in self._params

    def __iter__(self) -> Iterator[ParamDef]:
        return iter(self._params.values())

    def __len__(self) -> int:
        return len(self._params)

    def names(self) -> List[str]:
        return list(self._params)

    def merged_with(self, *others: "ParamRegistry") -> "ParamRegistry":
        """A new registry containing this registry plus ``others``.

        Hadoop applications all see Hadoop Common's parameters in addition
        to their own (§4, Table 1 caption); apps build their effective
        registry by merging with the common one.
        """
        merged = ParamRegistry(self.app)
        for registry in (self,) + others:
            for param in registry:
                if param.name not in merged:
                    merged.register(param)
        return merged

    def tagged(self, tag: str) -> List[ParamDef]:
        return [p for p in self if tag in p.tags]
