"""Deterministic, seed-driven fault injection over the simulation kernel.

The paper's hypothesis-testing machinery (§5, significance 1e-4) exists
because real whole-system unit tests are *flaky*: messages get lost,
daemons die, disks stall, timers drift.  Our simulated corpus is fully
deterministic, so that machinery would never be exercised — unless the
flakiness is injected.  This module injects it **reproducibly**:

* a :class:`FaultPlan` declares fault *probabilities* (message drop,
  delay, duplication; node crash/restart; slow I/O; clock jitter;
  harness infrastructure errors) plus a seed;
* a :class:`FaultInjector` turns the plan into concrete decisions.  Every
  decision is drawn from a per-category ``random.Random`` stream seeded
  from ``(injector seed, category)``, and the simulation itself is
  deterministic, so the same seed yields a byte-identical fault schedule
  — trials stay reproducible while becoming realistically flaky.

The injector is activated with :func:`fault_scope` (a contextvar, like
``ConfAgent``) and consulted from hook points in
:mod:`repro.common.ipc` (drop/delay/duplicate), :mod:`repro.common.network`
(dropped socket reads, slow I/O), :mod:`repro.common.node` /
:mod:`repro.common.cluster` (crash/restart scheduling, clock jitter).
Outside a scope, the shared inert :class:`NullInjector` makes every hook
a constant-return no-op.

Crucially, each *execution* gets its own injector seed (derived from the
trial seed, which differs between heterogeneous and homogeneous runs),
so injected failures strike hetero and homo trials independently with
identical probability — exactly the null hypothesis that the Fisher
exact test (`repro.core.stats`) is built to dismiss.
"""

from __future__ import annotations

import random
import zlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.common.errors import InfrastructureError


def fault_seed(*parts: Any) -> int:
    """Deterministic seed from identifying strings/ints (crc32, like
    :func:`repro.core.execcache.stable_seed`; duplicated here because the
    common substrate must not import the core layer).  Parts are
    length-prefixed so distinct part tuples never join to the same byte
    stream (``("a|b", "c")`` vs ``("a", "b|c")``)."""
    pieces = []
    for part in parts:
        text = str(part)
        pieces.append("%d:%s" % (len(text), text))
    return zlib.crc32("".join(pieces).encode("utf-8"))


@dataclass(frozen=True)
class FaultPlan:
    """Declarative chaos schedule: probabilities + a seed.

    All probabilities default to 0.0, so ``FaultPlan()`` is inert.  The
    plan is frozen and hashable: campaign configs embed it, and reports
    derived from the same plan + seed are bit-identical across runs.
    """

    seed: int = 0
    #: probability that a message (RPC request, awaited socket read) is
    #: silently dropped — the receiver observes a timeout.
    drop_prob: float = 0.0
    #: probability that a message is delayed by uniform(*delay_range_s).
    delay_prob: float = 0.0
    delay_range_s: Tuple[float, float] = (0.05, 2.0)
    #: probability that an RPC request is delivered twice (at-least-once
    #: delivery; non-idempotent handlers corrupt state).
    duplicate_prob: float = 0.0
    #: per-node probability of one crash/restart cycle during the test.
    crash_prob: float = 0.0
    crash_window_s: Tuple[float, float] = (1.0, 600.0)
    restart_delay_s: Tuple[float, float] = (1.0, 30.0)
    #: probability that one throttled I/O wait runs ``io_slowdown_factor``
    #: times slower (a stalling disk / noisy neighbour).
    io_slowdown_prob: float = 0.0
    io_slowdown_factor: float = 4.0
    #: fractional clock jitter: every positive timer delay is scaled by
    #: uniform(1 - jitter, 1 + jitter).  Perturbs heartbeat/timeout
    #: interleavings without changing configured semantics.
    clock_jitter: float = 0.0
    #: probability that an execution dies with an InfrastructureError
    #: before the test body runs (a lost container); exercises the
    #: runner's infra-retry path.
    infra_error_prob: float = 0.0
    #: probability that a supervised worker *process* hard-dies
    #: (``os._exit``) just before running a profile — the harness-level
    #: chaos that makes the supervisor itself testable.  Consulted only
    #: by the process supervisor (repro.core.supervise); sequential and
    #: thread backends never kill their own process.  Not part of the
    #: ``moderate`` preset for the same reason.
    worker_crash_prob: float = 0.0

    @property
    def active(self) -> bool:
        return any((self.drop_prob, self.delay_prob, self.duplicate_prob,
                    self.crash_prob, self.io_slowdown_prob,
                    self.clock_jitter, self.infra_error_prob,
                    self.worker_crash_prob))

    @classmethod
    def moderate(cls, seed: int = 0) -> "FaultPlan":
        """A realistic mid-intensity chaos preset (the CLI's ``--chaos``)."""
        return cls(seed=seed, drop_prob=0.02, delay_prob=0.05,
                   duplicate_prob=0.01, crash_prob=0.02,
                   io_slowdown_prob=0.05, clock_jitter=0.01,
                   infra_error_prob=0.01)

    def worker_crash_decision(self, task: str, delivery: int) -> bool:
        """Should the worker about to run ``task`` hard-die instead?

        Deterministic per (plan seed, task, delivery attempt): the first
        delivery of a profile may be doomed while its redelivery draws a
        fresh decision, so bounded redelivery genuinely recovers injected
        crashes.  The *caller* performs the kill (``os._exit``); keeping
        the policy here and the mechanism in the supervisor means this
        hook can be unit-tested without dying.
        """
        if not self.worker_crash_prob:
            return False
        rng = random.Random(fault_seed(self.seed, "worker-crash",
                                       task, delivery))
        return rng.random() < self.worker_crash_prob


class NullInjector:
    """Inert injector used outside fault scopes: every hook is free."""

    active = False

    def drop_message(self, what: str) -> bool:
        return False

    def message_delay(self, what: str) -> float:
        return 0.0

    def duplicate_message(self, what: str) -> bool:
        return False

    def io_slowdown(self) -> float:
        return 1.0

    def clock_jitter(self, delay: float) -> float:
        return delay

    def schedule_node_faults(self, node: Any) -> None:
        pass

    def attach_clock(self, sim: Any) -> None:
        pass

    def check_infra(self, what: str = "execution") -> None:
        pass


NULL_INJECTOR = NullInjector()

_current_injector: ContextVar[Any] = ContextVar("fault_injector",
                                                default=NULL_INJECTOR)


def current_injector() -> Any:
    """The injector for the calling context (inert when none active)."""
    return _current_injector.get()


@contextmanager
def fault_scope(injector: Optional["FaultInjector"]) -> Iterator[None]:
    """Activate ``injector`` for the dynamic extent (None = no-op scope)."""
    if injector is None:
        yield
        return
    token = _current_injector.set(injector)
    try:
        yield
    finally:
        _current_injector.reset(token)


class FaultInjector:
    """Executes one :class:`FaultPlan` for one unit-test execution.

    ``seed`` individualises this execution's schedule (TestRunner derives
    it from the trial seed and the plan seed).  ``on_fault`` is an
    optional callback ``(kind, data)`` invoked for every discrete
    injected fault — the runner routes it into the campaign trace log.
    Clock jitter is counted but not reported per-event (it perturbs every
    timer, which would drown the trace).
    """

    active = True

    def __init__(self, plan: FaultPlan, seed: int,
                 on_fault: Optional[Callable[[str, Dict[str, Any]], None]] = None
                 ) -> None:
        self.plan = plan
        self.seed = seed
        self.on_fault = on_fault
        self._rngs: Dict[str, random.Random] = {}
        #: fault kind -> number of injections this execution.
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _rng(self, category: str) -> random.Random:
        rng = self._rngs.get(category)
        if rng is None:
            rng = self._rngs[category] = random.Random(
                fault_seed(self.seed, category))
        return rng

    def _emit(self, kind: str, silent: bool = False, **data: Any) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self.on_fault is not None and not silent:
            self.on_fault(kind, data)

    # ------------------------------------------------------------------
    # message-level faults (hooks in repro.common.ipc / network)
    # ------------------------------------------------------------------
    def drop_message(self, what: str) -> bool:
        if self.plan.drop_prob and self._rng("drop").random() < self.plan.drop_prob:
            self._emit("drop", what=what)
            return True
        return False

    def message_delay(self, what: str) -> float:
        if self.plan.delay_prob and self._rng("delay").random() < self.plan.delay_prob:
            low, high = self.plan.delay_range_s
            delay = self._rng("delay").uniform(low, high)
            self._emit("delay", what=what, seconds=round(delay, 6))
            return delay
        return 0.0

    def duplicate_message(self, what: str) -> bool:
        if (self.plan.duplicate_prob
                and self._rng("duplicate").random() < self.plan.duplicate_prob):
            self._emit("duplicate", what=what)
            return True
        return False

    # ------------------------------------------------------------------
    # I/O and clock perturbations
    # ------------------------------------------------------------------
    def io_slowdown(self) -> float:
        if (self.plan.io_slowdown_prob
                and self._rng("slow-io").random() < self.plan.io_slowdown_prob):
            self._emit("slow-io", factor=self.plan.io_slowdown_factor)
            return self.plan.io_slowdown_factor
        return 1.0

    def clock_jitter(self, delay: float) -> float:
        jitter = self.plan.clock_jitter
        if jitter <= 0.0 or delay <= 0.0:
            return delay
        factor = 1.0 + self._rng("jitter").uniform(-jitter, jitter)
        self._emit("jitter", silent=True)
        return max(delay * factor, 0.0)

    def attach_clock(self, sim: Any) -> None:
        """Install the jitter hook on a simulator (MiniCluster.__init__)."""
        if self.plan.clock_jitter > 0.0:
            sim.jitter_fn = self.clock_jitter

    # ------------------------------------------------------------------
    # node lifecycle faults (hook in repro.common.cluster.add_node)
    # ------------------------------------------------------------------
    def schedule_node_faults(self, node: Any) -> None:
        """Maybe schedule one crash/restart cycle for a freshly added node."""
        if not self.plan.crash_prob:
            return
        rng = self._rng("crash")
        roll = rng.random()
        crash_at = rng.uniform(*self.plan.crash_window_s)
        outage = rng.uniform(*self.plan.restart_delay_s)
        if roll >= self.plan.crash_prob:
            return  # rng consumed either way, so schedules stay aligned
        sim = node.sim
        node_name = type(node).__name__

        def _crash() -> None:
            if node.running:
                node.crash()
                self._emit("crash", node=node_name, at=round(sim.now, 6))

        def _restart() -> None:
            if not node.running:
                node.restart()
                self._emit("restart", node=node_name, at=round(sim.now, 6))

        sim.schedule(crash_at, _crash)
        sim.schedule(crash_at + outage, _restart)

    # ------------------------------------------------------------------
    # harness faults (hook in repro.core.runner)
    # ------------------------------------------------------------------
    def check_infra(self, what: str = "execution") -> None:
        if (self.plan.infra_error_prob
                and self._rng("infra").random() < self.plan.infra_error_prob):
            self._emit("infra-error", what=what)
            raise InfrastructureError(
                "injected infrastructure fault during %s" % what)

    # ------------------------------------------------------------------
    @property
    def total_faults(self) -> int:
        return sum(self.counts.values())


# ----------------------------------------------------------------------
# disk faults (hooks in repro.core.store via FaultyFile)
# ----------------------------------------------------------------------

class InjectedDiskFault(OSError):
    """An injected I/O error (torn write, ENOSPC).  Subclasses OSError so
    the store's real-world degradation path (catch OSError, go read-only)
    handles injected and genuine disk failures identically."""


class InjectedCrash(BaseException):
    """Simulated process death immediately *after* a durable write.

    Deliberately a BaseException: the store's (and campaign's) ordinary
    ``except OSError`` / ``except Exception`` recovery must not be able to
    swallow it, exactly as no handler survives SIGKILL.  Tests catch it
    explicitly at the outermost level and then reopen the store cold.
    """


@dataclass(frozen=True)
class DiskFaultPlan:
    """Declarative disk chaos for the result store: probabilities + seed.

    Mirrors :class:`FaultPlan` but targets the *harness's own* durable
    writes rather than the simulated application: decisions are made per
    physical ``write()`` call on a store segment, deterministically from
    ``(seed, file label, write index)``, so a given store layout replays
    the same fault schedule under the same seed.
    """

    seed: int = 0
    #: the write is cut short *and* the process is assumed dead: a seeded
    #: prefix of the frame reaches the platter, then InjectedDiskFault.
    torn_write_prob: float = 0.0
    #: the write is cut short but *reported as complete* (a lying disk /
    #: lost sector): a prefix is written and the call returns success.
    short_write_prob: float = 0.0
    #: the write fails up front with ENOSPC; nothing reaches the disk.
    enospc_prob: float = 0.0
    #: the write completes and is fsynced, then the process "dies"
    #: (InjectedCrash).  Probes the durability claim: the record must be
    #: served after reopen.
    crash_after_write_prob: float = 0.0

    @property
    def active(self) -> bool:
        return any((self.torn_write_prob, self.short_write_prob,
                    self.enospc_prob, self.crash_after_write_prob))

    def write_decision(self, label: str, index: int) -> Optional[str]:
        """Which fault (if any) strikes write ``index`` on file ``label``.

        One roll per write, partitioned over the four kinds in a fixed
        order, so at most one fault fires per write and each kind's
        marginal probability matches its field.
        """
        if not self.active:
            return None
        rng = random.Random(fault_seed(self.seed, "disk-write", label, index))
        roll = rng.random()
        for kind, prob in (("torn-write", self.torn_write_prob),
                           ("short-write", self.short_write_prob),
                           ("enospc", self.enospc_prob),
                           ("crash-after-write", self.crash_after_write_prob)):
            if roll < prob:
                return kind
            roll -= prob
        return None

    def keep_bytes(self, label: str, index: int, size: int) -> int:
        """How many leading bytes of a torn/short write survive (at least
        one byte short of complete, so the frame is always damaged)."""
        if size <= 1:
            return 0
        rng = random.Random(fault_seed(self.seed, "disk-keep", label, index))
        return rng.randrange(0, size - 1)


class FaultyFile:
    """A binary file wrapper that consults a :class:`DiskFaultPlan` on
    every ``write``.  The policy lives on the plan, the mechanism here,
    and the *victim* (the store) only sees OSError/success — mirroring
    ``FaultPlan.worker_crash_decision``'s policy/mechanism split.
    """

    def __init__(self, handle: Any, plan: DiskFaultPlan, label: str = "",
                 counts: Optional[Dict[str, int]] = None) -> None:
        self._handle = handle
        self.plan = plan
        self.label = label
        self.counts = counts if counts is not None else {}
        self._write_index = 0

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def write(self, data: bytes) -> int:
        import errno as _errno
        import os as _os
        index = self._write_index
        self._write_index += 1
        kind = self.plan.write_decision(self.label, index)
        if kind is None:
            return self._handle.write(data)
        self._count(kind)
        if kind == "enospc":
            raise InjectedDiskFault(
                _errno.ENOSPC, "injected ENOSPC on %s" % self.label)
        if kind in ("torn-write", "short-write"):
            keep = self.plan.keep_bytes(self.label, index, len(data))
            if keep:
                self._handle.write(data[:keep])
            # the torn prefix is what a crash would leave on disk: make it
            # visible to the next open rather than hiding it in a buffer.
            self._handle.flush()
            _os.fsync(self._handle.fileno())
            if kind == "torn-write":
                raise InjectedDiskFault(
                    _errno.EIO, "injected torn write on %s" % self.label)
            return len(data)  # short write: the disk lies about success
        # crash-after-write: the record is fully durable, then we "die".
        self._handle.write(data)
        self._handle.flush()
        _os.fsync(self._handle.fileno())
        raise InjectedCrash("injected crash after durable write on %s"
                            % self.label)

    # pass-through surface the store needs from a real file object
    def flush(self) -> None:
        self._handle.flush()

    def fileno(self) -> int:
        return self._handle.fileno()

    def close(self) -> None:
        self._handle.close()
