"""Security primitives: block access tokens, data-transfer encryption keys,
and delegation tokens.

These back three Table-3 behaviours:

* ``dfs.block.access.token.enable`` — the NameNode only distributes block
  token keys when *it* has tokens enabled; a DataNode with tokens enabled
  cannot register its block pool without keys.
* ``dfs.encrypt.data.transfer``     — the NameNode only rolls data
  encryption keys when *it* encrypts; a DataNode expecting encrypted
  transfers cannot recompute a key it never received.
* ``yarn.resourcemanager.delegation.token.renew-interval`` — each issuer
  stamps expiry with *its own* interval, so after lowering the value on
  one ResourceManager, newly issued tokens expire before older ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import AccessTokenError, HandshakeError, TokenExpiredError


@dataclass(frozen=True)
class BlockToken:
    """Capability to access one block, minted under a specific key."""

    block_id: int
    key_id: int
    user: str = "client"


class BlockTokenSecretManager:
    """NameNode-side block token key roller and token minter."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self._key_id = 0

    def current_keys(self) -> Optional[List[int]]:
        """Keys shipped to DataNodes at registration; None when disabled."""
        if not self.enabled:
            return None
        return [self._key_id, self._key_id + 1]

    def roll_key(self) -> None:
        self._key_id += 1

    def mint(self, block_id: int) -> Optional[BlockToken]:
        if not self.enabled:
            return None
        return BlockToken(block_id=block_id, key_id=self._key_id)


class BlockTokenVerifier:
    """DataNode-side verifier; holds keys received from the NameNode."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self.keys: List[int] = []

    def install_keys(self, keys: Optional[List[int]]) -> None:
        if self.enabled and keys is None:
            raise AccessTokenError(
                "DataNode requires block access tokens but the NameNode "
                "distributed no block keys; cannot register block pool")
        self.keys = list(keys or [])

    def verify(self, token: Optional[BlockToken], block_id: int) -> None:
        if not self.enabled:
            return
        if token is None:
            raise AccessTokenError("block access token required for block %d"
                                   % block_id)
        if token.block_id != block_id or token.key_id not in self.keys:
            raise AccessTokenError("invalid block token for block %d" % block_id)


@dataclass(frozen=True)
class DataEncryptionKey:
    key_id: int
    material: bytes


class DataEncryptionKeyManager:
    """NameNode-side encryption key roller for dfs.encrypt.data.transfer."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self._key_id = 100
        self._material = b"k%03d" % self._key_id

    def current_key(self) -> Optional[DataEncryptionKey]:
        if not self.enabled:
            return None
        return DataEncryptionKey(self._key_id, self._material)

    def roll(self) -> None:
        self._key_id += 1
        self._material = b"k%03d" % self._key_id


class DataEncryptionKeyStore:
    """DataNode-side key store, synced from the NameNode at registration."""

    def __init__(self, enabled: bool) -> None:
        self.enabled = enabled
        self._keys: Dict[int, bytes] = {}
        #: the newest installed key, used when *sending* encrypted streams.
        self.current: Optional[DataEncryptionKey] = None

    def install(self, key: Optional[DataEncryptionKey]) -> None:
        if key is not None:
            self._keys[key.key_id] = key.material
            self.current = key

    def lookup(self, key_id: int) -> bytes:
        if key_id not in self._keys:
            raise HandshakeError(
                "DataNode cannot re-compute encryption key: block key %d is "
                "missing from its key store" % key_id)
        return self._keys[key_id]

    def has_keys(self) -> bool:
        return bool(self._keys)


@dataclass(frozen=True)
class DelegationToken:
    token_id: int
    issue_time: float
    expiry_time: float

    def check_valid(self, now: float) -> None:
        if now > self.expiry_time:
            raise TokenExpiredError(
                "delegation token %d expired at %.0f (now %.0f)"
                % (self.token_id, self.expiry_time, now))


class DelegationTokenManager:
    """Issues delegation tokens with expiry = issue time + renew interval."""

    def __init__(self, renew_interval_fn) -> None:
        self.renew_interval_fn = renew_interval_fn
        self._next_id = 1
        self.issued: List[DelegationToken] = []

    def issue(self, now: float) -> DelegationToken:
        token = DelegationToken(
            token_id=self._next_id,
            issue_time=now,
            expiry_time=now + self.renew_interval_fn())
        self._next_id += 1
        self.issued.append(token)
        return token
