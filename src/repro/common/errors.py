"""Exception taxonomy shared by the simulated cloud systems.

The hierarchy deliberately mirrors the failure classes that the paper's
Table 3 attributes to heterogeneous configurations: wire-format decode
failures, security handshake failures, timeouts, and limit violations.
Unit tests in the per-application corpora treat *any* raised exception as
a test failure, exactly like a JUnit assertion error or uncaught exception.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the simulated systems."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed, or locally invalid."""


class WireError(ReproError):
    """Base class for byte-level wire-format problems."""


class DecodeError(WireError):
    """Peer sent bytes this node cannot decode (codec/format mismatch)."""


class ChecksumError(WireError):
    """Data checksum verification failed."""


class HandshakeError(ReproError):
    """Security/protocol negotiation between two peers failed."""


class SaslError(HandshakeError):
    """SASL protection-level negotiation failed."""


class SslError(HandshakeError):
    """SSL/TLS layering mismatch (one side speaks TLS, the other does not)."""


class AccessTokenError(ReproError):
    """A block access token or delegation token was rejected."""


class TokenExpiredError(AccessTokenError):
    """A delegation token expired earlier than the holder expected."""


class SocketTimeout(ReproError):
    """A read/connect deadline elapsed in simulated time."""


class RpcError(ReproError):
    """An RPC failed for a reason other than timeout or handshake."""


class ConnectError(RpcError):
    """Client could not establish a connection to the server."""


class NodeStateError(ReproError):
    """A node is in the wrong lifecycle state for the requested operation."""


class LimitExceededError(ReproError):
    """A server-side maximum (path length, directory items, ...) was hit."""


class PlacementPolicyError(ReproError):
    """A block placement / upgrade-domain policy rejected a block move."""


class RegistrationError(ReproError):
    """A worker node failed to register with its master."""


class BalancerTimeout(ReproError):
    """The HDFS balancer gave up waiting for progress."""


class ShuffleError(ReproError):
    """A reduce task failed to fetch or decode map output."""


class CommitError(ReproError):
    """An output-commit protocol produced an inconsistent result."""


class SnapshotError(ReproError):
    """A snapshot operation was declined by the NameNode."""


class AllocationError(ReproError):
    """A resource request exceeded the scheduler's configured maximum."""


class SlotAllocationError(ReproError):
    """Flink JobManager could not allocate a task slot."""


class TestFailure(AssertionError, ReproError):
    """Raised by corpus unit tests when an application-level check fails."""


class InfrastructureError(ReproError):
    """The test *harness* (not the application under test) failed.

    A container that died, a filesystem that filled up, an injected
    environment fault.  TestRunner treats these separately from
    test-oracle failures: they are retried with backoff and, if they
    persist, reported as ``infra-error`` instead of polluting the
    heterogeneous-unsafe statistics.
    """
