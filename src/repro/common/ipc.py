"""Hadoop-style RPC: SASL-protected calls, rpc timeouts, shared IPC quirk.

Three behaviours from the paper live here:

* ``hadoop.rpc.protection`` — client and server each advertise exactly the
  SASL QOP from their own configuration; disjoint offers abort the
  connection (Table 3, Hadoop Common).
* ``ipc.client.rpc-timeout.ms`` — a client enforces *its* read deadline
  while a server paces keepalives on long calls according to *its own*
  idea of the timeout; a client with a short deadline talking to a server
  configured with a long one starves and times out (Table 3).
* the **shared IPC component** — in Hadoop unit tests "different nodes
  share the InterProcess Communication (IPC) component, which has its own
  configuration object [but] sometimes reads configuration values from
  external configuration objects as well" (§7.1, causes of false
  positives).  :class:`IpcComponent` reproduces this: it cross-checks
  connection parameters read through the caller's conf against its own
  conf, which fires spuriously under heterogeneous injection for four
  ``ipc.client.*`` parameters.  ``shared=False`` is the paper's one-line
  Hadoop fix that makes those false alarms disappear.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Optional, Tuple

import repro.perf as perf
from repro.common.configuration import Configuration
from repro.common.errors import RpcError, SocketTimeout
from repro.common.faults import current_injector
from repro.common.wire import negotiate_sasl, roundtrip_payload
from repro.core.confagent import current_agent

#: Parameters the shared IPC component reads both ways (the four
#: IPC-related false-positive parameters of §7.1).
IPC_SHARED_PARAMS = (
    "ipc.client.connect.max.retries",
    "ipc.client.connect.retry.interval",
    "ipc.client.idlethreshold",
    "ipc.client.kill.max",
)

#: Hadoop's default client ping cadence when no rpc timeout is set.
DEFAULT_PING_INTERVAL_MS = 60000

#: Process-wide switch for the paper's one-line Hadoop fix ("After we
#: modified one line of code in Hadoop to disable the sharing, the false
#: alarms disappeared").  Clusters consult this when constructing their
#: IpcComponent.
_IPC_SHARING_ENABLED = True


def set_ipc_sharing(enabled: bool) -> bool:
    """Enable/disable IPC-component sharing; returns the previous value."""
    global _IPC_SHARING_ENABLED
    previous = _IPC_SHARING_ENABLED
    _IPC_SHARING_ENABLED = enabled
    return previous


def ipc_sharing_enabled() -> bool:
    return _IPC_SHARING_ENABLED


# Shared constant dicts: _wire_opts is on the per-RPC hot path and the
# options are only ever splatted into encode/decode (never mutated).
_PRIVACY_OPTS: Dict[str, Any] = {"encryption_key": b"sasl-privacy-wrap"}
_PLAIN_OPTS: Dict[str, Any] = {}


def _wire_opts(protection: str) -> Dict[str, Any]:
    if protection == "privacy":
        return _PRIVACY_OPTS
    return _PLAIN_OPTS


class RpcServer:
    """Server endpoint owned by one node; reads the node's conf lazily."""

    def __init__(self, owner: str, conf: Configuration) -> None:
        self.owner = owner
        self.conf = conf
        self._methods: Dict[str, Callable[..., Any]] = {}
        self.calls_served = 0

    def register(self, method: str, handler: Callable[..., Any]) -> None:
        self._methods[method] = handler

    def protection(self) -> str:
        return self.conf.get_enum("hadoop.rpc.protection")

    def keepalive_interval_s(self) -> float:
        """How often the server emits progress bytes on a long call.

        The server paces keepalives assuming clients use the timeout *it*
        is configured with (half the deadline, as Hadoop's ping logic
        does); with no timeout configured it falls back to the default
        60 s ping cadence.
        """
        timeout_ms = self.conf.get_int("ipc.client.rpc-timeout.ms")
        if timeout_ms <= 0:
            return DEFAULT_PING_INTERVAL_MS / 1000.0
        return timeout_ms / 2000.0

    def _dispatch(self, method: str, args: Any) -> Any:
        if method not in self._methods:
            raise RpcError("no such RPC method %s.%s" % (self.owner, method))
        self.calls_served += 1
        return self._methods[method](*args)


class RpcClient:
    """Client endpoint reading the calling node's (or test's) conf."""

    def __init__(self, conf: Configuration,
                 ipc: Optional["IpcComponent"] = None) -> None:
        self.conf = conf
        self.ipc = ipc

    def protection(self) -> str:
        return self.conf.get_enum("hadoop.rpc.protection")

    def timeout_s(self) -> float:
        timeout_ms = self.conf.get_int("ipc.client.rpc-timeout.ms")
        return timeout_ms / 1000.0 if timeout_ms > 0 else float("inf")

    # ------------------------------------------------------------------
    def call(self, server: RpcServer, method: str, *args: Any) -> Any:
        """Instantaneous RPC: handshake + encode/decode, no simulated time."""
        what = "rpc %s.%s" % (server.owner, method)
        injector = current_injector()
        if injector.drop_message(what):
            raise SocketTimeout("injected fault: %s request dropped" % what)
        level = negotiate_sasl(self.protection(), server.protection(), what="rpc")
        if self.ipc is not None:
            self.ipc.check_connection_params(self.conf)
        opts = _wire_opts(level)
        request = roundtrip_payload({"method": method, "args": list(args)},
                                    **opts)
        if injector.duplicate_message(what):
            # at-least-once delivery: the server processes the request
            # twice; non-idempotent handlers corrupt state accordingly.
            server._dispatch(request["method"], request["args"])
        result = server._dispatch(request["method"], request["args"])
        return roundtrip_payload({"result": result}, **opts)["result"]

    def call_timed(self, server: RpcServer, method: str, args: Tuple[Any, ...],
                   duration: float) -> Generator:
        """Long-running RPC as a simulation process body.

        The server works for ``duration`` simulated seconds, emitting a
        keepalive every :meth:`RpcServer.keepalive_interval_s`; the client
        aborts when it sees no bytes for :meth:`timeout_s`.
        """
        what = "rpc %s.%s" % (server.owner, method)
        injector = current_injector()
        level = negotiate_sasl(self.protection(), server.protection(), what="rpc")
        if self.ipc is not None:
            self.ipc.check_connection_params(self.conf)
        client_deadline = self.timeout_s()
        keepalive = server.keepalive_interval_s()
        if injector.drop_message(what):
            # The request never reaches the server: the client sees no
            # bytes at all and gives up at its deadline (or, with no
            # deadline configured, after the call's nominal duration).
            wait = client_deadline if client_deadline != float("inf") else duration
            yield wait
            raise SocketTimeout("injected fault: %s request dropped "
                                "(gave up after %.3fs)" % (what, wait))
        # An injected network delay widens the first inter-byte gap, so a
        # tight client deadline can genuinely trip on it.
        gap_extra = injector.message_delay(what)
        remaining = duration
        while remaining > 0:
            work = min(keepalive, remaining)
            gap = work + gap_extra
            gap_extra = 0.0
            if gap > client_deadline:
                yield client_deadline
                raise SocketTimeout(
                    "rpc %s.%s: no response within %.3fs (server keepalive "
                    "cadence %.3fs)" % (server.owner, method, client_deadline,
                                        keepalive))
            yield gap
            remaining -= work
        opts = _wire_opts(level)
        result = server._dispatch(method, list(args))
        return roundtrip_payload({"result": result}, **opts)["result"]


class IpcComponent:
    """Process-wide IPC machinery shared by every node in a unit test.

    Created lazily by the first node that makes an RPC call, so its own
    configuration object is mapped (Rule 1.1) to *that* node.  Each
    connection setup then reads the four ``ipc.client.*`` parameters both
    through the caller's conf and through the component's own conf and
    insists they agree — which is always true in a real deployment (one
    process, one conf) but false under heterogeneous injection.
    """

    def __init__(self, conf_factory: Callable[[], Configuration],
                 shared: bool = True) -> None:
        self.shared = shared
        # The component's own configuration object is created *now*, i.e.
        # inside the init scope of whichever node builds the component
        # first — so Rule 1.1 maps it to that node, setting up the
        # cross-node sharing the paper observed in Hadoop.
        self._own_conf: Optional[Configuration] = conf_factory() if shared else None
        self.cross_check_failures = 0
        #: caller-conf id -> (caller conf, validity key): a *passed*
        #: cross-check memoised so hot RPC loops skip the 8 ``get``\ s.
        #: The stored conf reference both pins the object (id stays
        #: unique) and lets a hit verify identity, not just id equality.
        self._check_memo: Dict[int, Tuple[Configuration, Tuple[Any, ...]]] = {}

    def _own(self, caller_conf: Configuration) -> Configuration:
        if not self.shared or self._own_conf is None:
            # The paper's one-line fix: no sharing, so the component's view
            # is simply the caller's view.
            return caller_conf
        return self._own_conf

    def check_connection_params(self, caller_conf: Configuration) -> None:
        own_conf = self._own(caller_conf)
        # Memoise passed checks: the outcome depends only on the two
        # confs' contents and the agent's injection mapping, so a repeat
        # check with unchanged mutation counters and ownership epoch must
        # pass again.  Skipped while the agent records usage (the pre-run
        # needs every ``get`` observed) and with the fast path off.
        # Failures are never memoised — each failing call must raise and
        # count, exactly like the unmemoised loop.
        agent = current_agent()
        memo_key = None
        if perf.FAST_PATH and not getattr(agent, "record_usage", False):
            memo_key = (id(own_conf),
                        getattr(caller_conf, "_mutations", -1),
                        getattr(own_conf, "_mutations", -1),
                        id(agent), getattr(agent, "ownership_epoch", 0))
            hit = self._check_memo.get(id(caller_conf))
            if (hit is not None and hit[0] is caller_conf
                    and hit[1] == memo_key):
                return
        for param in IPC_SHARED_PARAMS:
            external = caller_conf.get(param)
            internal = own_conf.get(param)
            if external != internal:
                self.cross_check_failures += 1
                raise RpcError(
                    "IPC connection parameter %s changed mid-flight: "
                    "connection built with %r, reused with %r"
                    % (param, internal, external))
        if memo_key is not None:
            self._check_memo[id(caller_conf)] = (caller_conf, memo_key)
