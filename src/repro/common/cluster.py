"""MiniCluster base: the in-process "whole cluster" used by unit tests.

The paper's target applications implement whole-system tests by running
every node inside one process (MiniDFSCluster, Flink's MiniCluster, ...).
Our :class:`MiniCluster` plays that role: it owns the discrete-event
:class:`~repro.common.simulation.Simulator`, keeps the node roster, and
exposes the time-advancing helpers corpus unit tests use.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Type, TypeVar

from repro.common.faults import current_injector
from repro.common.node import Node
from repro.common.simulation import Simulator

N = TypeVar("N", bound=Node)


class MiniCluster:
    """In-process cluster of simulated nodes sharing one simulator."""

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.nodes: List[Node] = []
        self.ipc = None  # shared IPC component, see ensure_ipc()
        self._shut_down = False
        # Under an active fault scope, perturb this cluster's clock.
        current_injector().attach_clock(self.sim)

    def ensure_ipc(self, conf_factory: Any) -> Any:
        """Create the process-wide shared IPC component on first use.

        Called from inside a node's init scope, so the component's own
        configuration object is mapped to that node — reproducing the
        Hadoop sharing quirk behind the paper's IPC false positives.
        """
        from repro.common.ipc import IpcComponent, ipc_sharing_enabled
        if self.ipc is None:
            self.ipc = IpcComponent(conf_factory, shared=ipc_sharing_enabled())
        return self.ipc

    # ------------------------------------------------------------------
    # roster
    # ------------------------------------------------------------------
    def add_node(self, node: N) -> N:
        self.nodes.append(node)
        # Under an active fault scope, the node may draw a deterministic
        # crash/restart cycle (see repro.common.faults.FaultInjector).
        current_injector().schedule_node_faults(node)
        return node

    def nodes_of(self, node_class: Type[N]) -> List[N]:
        return [n for n in self.nodes if isinstance(n, node_class)]

    def running_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.running]

    # ------------------------------------------------------------------
    # time control (what corpus tests call instead of Thread.sleep)
    # ------------------------------------------------------------------
    def run_for(self, duration: float) -> None:
        """Advance simulated time; background failures fail the test."""
        self.sim.run_for(duration)
        self.sim.raise_crashes()

    def run_until_idle(self, max_time: float = 3600.0) -> None:
        self.sim.run(max_time=self.sim.now + max_time)
        self.sim.raise_crashes()

    def check_health(self) -> None:
        """Raise the first unobserved background failure, if any."""
        self.sim.raise_crashes()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        if self._shut_down:
            return
        self._shut_down = True
        for node in self.nodes:
            node.stop()

    def __enter__(self) -> "MiniCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()
