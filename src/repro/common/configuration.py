"""Hadoop-style ``Configuration`` with ZebraConf's ConfAgent hook points.

This mirrors Fig. 2a of the paper: the blank constructor calls
``ConfAgent.newConf``, the copy constructor calls ``ConfAgent.cloneConf``,
``get`` consults ``ConfAgent.interceptGet`` first, and ``set`` notifies
``ConfAgent.interceptSet`` (which writes values through to the parent conf
when the object is a node-side clone of a unit-test conf).

Outside a ZebraConf session the hooks hit the inert
:class:`repro.core.confagent.NullAgent` and the class behaves exactly like
the unmodified application's configuration class.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

import repro.perf as perf
from repro.common.errors import ConfigurationError
from repro.common.params import ParamRegistry
from repro.core.confagent import NO_OVERRIDE, agent_getter, current_agent

_UNSET = object()


class Configuration:
    """Typed key/value configuration with registry-backed defaults."""

    #: Subclasses bind their application's parameter registry here so that
    #: ``Configuration()`` knows the default of every documented parameter.
    registry: Optional[ParamRegistry] = None

    def __init__(self, source: Optional["Configuration"] = None) -> None:
        self._properties: Dict[str, Any] = {}
        #: Monotonic per-object write counter.  Cheap cache-invalidation
        #: signal for consumers (e.g. the IPC cross-check memo) that need
        #: "has this conf changed since I last looked?" without hashing
        #: the property map.
        self._mutations = 0
        if source is None:
            current_agent().new_conf(self)
        else:
            self._properties.update(source._properties)
            if self.registry is None:
                self.registry = source.registry
            current_agent().clone_conf(source, self)

    # ------------------------------------------------------------------
    # core get/set
    # ------------------------------------------------------------------
    def get(self, name: str, default: Any = _UNSET) -> Any:
        """The value of ``name`` as seen by *this object's owner*.

        Resolution order: ZebraConf-injected value (if an active agent has
        an assignment for this object's node), explicitly set value,
        registry default, the ``default`` argument.
        """
        # ``get`` is the hottest call in the harness (every parameter read
        # in every profiled execution lands here); the bound-method alias
        # skips one Python frame per lookup versus ``current_agent()``.
        agent = agent_getter() if perf.FAST_PATH else current_agent()
        injected = agent.intercept_get(self, name)
        if injected is not NO_OVERRIDE:
            return injected
        if name in self._properties:
            return self._properties[name]
        if self.registry is not None and name in self.registry:
            return self.registry.default_of(name)
        if default is not _UNSET:
            return default
        raise ConfigurationError("unknown parameter %r and no default given" % name)

    def set(self, name: str, value: Any) -> None:
        current_agent().intercept_set(self, name, value)
        self._properties[name] = value
        self._mutations += 1

    def raw_set(self, name: str, value: Any) -> None:
        """Store without notifying the agent (used by write-through)."""
        self._properties[name] = value
        self._mutations += 1

    def unset(self, name: str) -> None:
        self._properties.pop(name, None)
        self._mutations += 1

    def is_explicitly_set(self, name: str) -> bool:
        return name in self._properties

    # ------------------------------------------------------------------
    # typed accessors
    # ------------------------------------------------------------------
    def get_bool(self, name: str, default: Any = _UNSET) -> bool:
        value = self.get(name, default)
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "yes", "1"):
                return True
            if lowered in ("false", "no", "0"):
                return False
        if isinstance(value, int):
            return bool(value)
        raise ConfigurationError("parameter %r=%r is not a boolean" % (name, value))

    def get_int(self, name: str, default: Any = _UNSET) -> int:
        value = self.get(name, default)
        if isinstance(value, bool):
            raise ConfigurationError("parameter %r=%r is not an int" % (name, value))
        try:
            return int(value)
        except (TypeError, ValueError):
            raise ConfigurationError("parameter %r=%r is not an int" % (name, value))

    def get_float(self, name: str, default: Any = _UNSET) -> float:
        value = self.get(name, default)
        try:
            return float(value)
        except (TypeError, ValueError):
            raise ConfigurationError("parameter %r=%r is not a float" % (name, value))

    def get_str(self, name: str, default: Any = _UNSET) -> str:
        return str(self.get(name, default))

    def get_enum(self, name: str, default: Any = _UNSET) -> str:
        """A string value validated against the registry's enum values."""
        value = str(self.get(name, default))
        if self.registry is not None:
            param = self.registry.maybe_get(name)
            if param is not None and param.values is not None:
                if value not in param.values:
                    raise ConfigurationError(
                        "parameter %r=%r not in %r" % (name, value, param.values))
        return value

    # ------------------------------------------------------------------
    # cloning
    # ------------------------------------------------------------------
    def clone(self) -> "Configuration":
        """Copy-construct (triggers the cloneConf hook unless the agent is
        mid ``refToCloneConf``, which suppresses it)."""
        return type(self)(self)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------
    def explicit_items(self) -> Iterator[Tuple[str, Any]]:
        return iter(sorted(self._properties.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "%s(%d explicit)" % (type(self).__name__, len(self._properties))


def ref_to_clone(conf: Configuration) -> Configuration:
    """Fig. 2b line 17: replace a stored conf reference with a clone.

    Node initialization functions call this on the configuration argument
    they receive; under ZebraConf the returned clone is mapped to the node
    (Rule 2), while outside a session the original reference is returned
    unchanged, preserving stock behaviour.
    """
    return current_agent().ref_to_clone_conf(conf)
