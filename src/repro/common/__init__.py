"""Shared substrate: simulation kernel, configuration, wire formats, RPC."""

from repro.common.cluster import MiniCluster
from repro.common.configuration import Configuration, ref_to_clone
from repro.common.node import Node, node_init, register_node_type
from repro.common.params import ParamDef, ParamRegistry
from repro.common.simulation import Event, PeriodicTask, Process, Simulator

__all__ = [
    "Configuration", "ref_to_clone", "MiniCluster", "Node", "node_init",
    "register_node_type", "ParamDef", "ParamRegistry", "Simulator", "Event",
    "Process", "PeriodicTask",
]
