"""Byte-level wire formats: framing, compression, encryption, checksums.

Heterogeneous-unsafe parameters related to compression, encryption, and
transport protocols fail because "these parameters affect the data format
in a file or in a network communication, and thus if two nodes have
different parameter values, one node will not be able to read data
correctly" (§7.1).  To reproduce those failures *mechanistically* rather
than by fiat, peers in our simulated systems exchange real byte strings:

* the **sender** encodes a JSON payload according to *its* configuration
  (compression codec, encryption on/off, SSL layering);
* the **receiver** decodes according to *its own* configuration and gets a
  genuine :class:`~repro.common.errors.DecodeError` /
  :class:`~repro.common.errors.SslError` when the layers disagree.

Checksums (``dfs.bytes-per-checksum``, ``dfs.checksum.type``) are computed
per chunk exactly as HDFS does, so a reader with a different chunk size or
algorithm fails verification on honest data.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import zlib
from typing import Any, Dict, List, Optional, Sequence, Tuple

import repro.perf as perf
from repro.common.errors import ChecksumError, DecodeError, SaslError, SslError

_PLAIN_MAGIC = b"ZCP1"
_SSL_MAGIC = b"TLS\x16"  # 0x16 = TLS handshake record type

#: codec name -> (frame magic, compress, decompress)
_CODECS = {
    "gzip": (b"GZ\x1f\x8b", lambda b: zlib.compress(b, 6)),
    "snappy": (b"SNZY", lambda b: zlib.compress(b, 1)),
    "lz4": (b"LZ4\x18", lambda b: zlib.compress(b, 2)),
    "zstd": (b"ZSTD", lambda b: zlib.compress(b, 9)),
}

SUPPORTED_CODECS = tuple(sorted(_CODECS))


def _xor_stream(data: bytes, key: bytes) -> bytes:
    if not key:
        raise ValueError("empty encryption key")
    key_len = len(key)
    if perf.FAST_PATH:
        # Bulk XOR via big-int arithmetic: ~50x faster than the per-byte
        # Python loop below and bit-for-bit identical.
        size = len(data)
        stream = (key * (size // key_len + 1))[:size]
        return (int.from_bytes(data, "little")
                ^ int.from_bytes(stream, "little")).to_bytes(size, "little")
    return bytes(b ^ key[i % key_len] for i, b in enumerate(data))


# Memoisation of the *byte-transform* layers (compress / xor / ssl) for
# repeated identical frames — block headers, heartbeats, and handshake
# messages are sent thousands of times with the same body.  Keys include
# every format-affecting option, so a node with different settings can
# never observe another node's cached frame.  Plain frames (no layers)
# are not cached: their encode is a single concatenation and their decode
# must re-parse anyway (callers may mutate the returned object, so JSON
# parsing is always fresh — only the layer unwrapping is memoised).
#
# The encode memo is keyed by a 16-byte digest of the canonical JSON text
# rather than the text itself: large repeated frames (block manifests,
# batched edits) no longer pin megabytes of key strings, so far more of
# them fit under _WIRE_MEMO_MAX before eviction kicks in.
_ENCODE_MEMO: Dict[Tuple[bytes, Optional[str], Optional[bytes], bool], bytes] = {}
_DECODE_MEMO: Dict[Tuple[bytes, Optional[str], Optional[bytes], bool], bytes] = {}
_WIRE_MEMO_MAX = 2048


def _payload_digest(raw: bytes) -> bytes:
    """16-byte content digest of the canonical payload text."""
    return hashlib.blake2b(raw, digest_size=16).digest()


def _evict_half(memo: Dict[Any, bytes]) -> None:
    """Drop the oldest half of a memo (dict preserves insertion order).

    Recently-inserted hot frames survive, unlike a full clear() which
    throws away every hot entry at once and restarts the cache cold.
    """
    for key in list(itertools.islice(iter(memo), len(memo) // 2 or 1)):
        del memo[key]


def clear_wire_memo() -> None:
    """Drop both frame caches (benches/tests use this between modes)."""
    _ENCODE_MEMO.clear()
    _DECODE_MEMO.clear()


def encode_payload(payload: Any, *, codec: Optional[str] = None,
                   encryption_key: Optional[bytes] = None,
                   ssl: bool = False) -> bytes:
    """Serialize ``payload`` with the sender's format settings."""
    raw = json.dumps(payload, sort_keys=True).encode("utf-8")
    layered = codec is not None or encryption_key is not None or ssl
    key = None
    if layered and perf.FAST_PATH:
        key = (_payload_digest(raw), codec, encryption_key, ssl)
        cached = _ENCODE_MEMO.get(key)
        if cached is not None:
            return cached
    data = _PLAIN_MAGIC + raw
    if codec is not None:
        magic, compress = _codec(codec)
        data = magic + compress(data)
    if encryption_key is not None:
        data = _xor_stream(data, encryption_key)
    if ssl:
        data = _SSL_MAGIC + _xor_stream(data, b"\x5c")
    if key is not None:
        if len(_ENCODE_MEMO) >= _WIRE_MEMO_MAX:
            _evict_half(_ENCODE_MEMO)
        _ENCODE_MEMO[key] = data
    return data


def decode_payload(data: bytes, *, codec: Optional[str] = None,
                   encryption_key: Optional[bytes] = None,
                   ssl: bool = False) -> Any:
    """Parse bytes with the *receiver's* format settings.

    Raises :class:`SslError` or :class:`DecodeError` when the receiver's
    expectations do not match what is actually on the wire.
    """
    layered = codec is not None or encryption_key is not None or ssl
    if layered and perf.FAST_PATH:
        key = (data, codec, encryption_key, ssl)
        plain = _DECODE_MEMO.get(key)
        if plain is not None:
            return _parse_plain(plain)
        plain = _unwrap_layers(data, codec, encryption_key, ssl)
        if len(_DECODE_MEMO) >= _WIRE_MEMO_MAX:
            _evict_half(_DECODE_MEMO)
        _DECODE_MEMO[key] = plain
        return _parse_plain(plain)
    return _parse_plain(_unwrap_layers(data, codec, encryption_key, ssl))


def _unwrap_layers(data: bytes, codec: Optional[str],
                   encryption_key: Optional[bytes], ssl: bool) -> bytes:
    if ssl:
        if not data.startswith(_SSL_MAGIC):
            raise SslError("expected TLS record, peer sent plaintext")
        data = _xor_stream(data[len(_SSL_MAGIC):], b"\x5c")
    elif data.startswith(_SSL_MAGIC):
        raise SslError("peer sent TLS record to a plaintext endpoint")
    if encryption_key is not None:
        data = _xor_stream(data, encryption_key)
    if codec is not None:
        magic, _ = _codec(codec)
        if not data.startswith(magic):
            raise DecodeError("bad %s header: %r" % (codec, data[:4]))
        try:
            data = zlib.decompress(data[len(magic):])
        except zlib.error as exc:
            raise DecodeError("decompression failed: %s" % exc)
    return data


def _parse_plain(data: bytes) -> Any:
    if not data.startswith(_PLAIN_MAGIC):
        raise DecodeError("bad frame magic: %r" % data[:4])
    try:
        return json.loads(data[len(_PLAIN_MAGIC):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DecodeError("payload parse failed: %s" % exc)


def _codec(name: str) -> Tuple[bytes, Any]:
    try:
        return _CODECS[name]
    except KeyError:
        raise DecodeError("unknown compression codec %r" % name)


def transfer(payload: Any, sender_opts: dict, receiver_opts: dict) -> Any:
    """Encode with the sender's options and decode with the receiver's."""
    return decode_payload(encode_payload(payload, **sender_opts), **receiver_opts)


class _JsonFallback(Exception):
    """Structure the structural copier cannot reproduce exactly."""


def _json_copy(obj: Any) -> Any:
    """A fresh object equal to ``json.loads(json.dumps(obj, sort_keys=True))``.

    Only exact-type JSON natives are copied structurally; anything json
    would coerce (IntEnum, str subclasses, non-string dict keys) or
    reject raises :class:`_JsonFallback` so the caller takes the real
    serialisation path and its exact semantics — including TypeError on
    unserialisable payloads.
    """
    t = type(obj)
    if t is str or t is int or t is float or t is bool or obj is None:
        return obj
    if t is list or t is tuple:
        return [_json_copy(item) for item in obj]
    if t is dict:
        out = {}
        # sort_keys=True means the decoded dict iterates in sorted-key
        # order; reproduce that, and bail on any non-str key (json would
        # coerce it to a string).
        try:
            keys = sorted(obj)
        except TypeError:
            raise _JsonFallback
        for key in keys:
            if type(key) is not str:
                raise _JsonFallback
            out[key] = _json_copy(obj[key])
        return out
    raise _JsonFallback


def roundtrip_payload(payload: Any, *, codec: Optional[str] = None,
                      encryption_key: Optional[bytes] = None,
                      ssl: bool = False) -> Any:
    """``decode_payload(encode_payload(payload, opts), opts)``, optimised.

    RPC between same-configured endpoints serialises a payload and
    immediately parses it back, purely so the receiver gets a *fresh*
    object with JSON semantics (tuples become lists, dicts re-keyed in
    sorted order) and unserialisable payloads still fail.  For plain
    frames the fast path produces that result structurally, skipping the
    dumps/loads pair; layered frames keep the real byte transforms (and
    their memo) since format errors are the point of those layers.
    """
    layered = codec is not None or encryption_key is not None or ssl
    if not layered and perf.FAST_PATH:
        try:
            return _json_copy(payload)
        except _JsonFallback:
            pass
    return decode_payload(
        encode_payload(payload, codec=codec, encryption_key=encryption_key,
                       ssl=ssl),
        codec=codec, encryption_key=encryption_key, ssl=ssl)


# ---------------------------------------------------------------------------
# checksums (dfs.bytes-per-checksum / dfs.checksum.type)
# ---------------------------------------------------------------------------
CHECKSUM_TYPES = ("CRC32", "CRC32C", "NULL")


def _crc(chunk: bytes, ctype: str) -> int:
    if ctype == "CRC32":
        return zlib.crc32(chunk) & 0xFFFFFFFF
    if ctype == "CRC32C":
        # Simulated Castagnoli variant: same engine, different tweak, so
        # values genuinely differ from CRC32 on the same data.
        return (zlib.crc32(chunk, 0x1EDC6F41) ^ 0xA5A5A5A5) & 0xFFFFFFFF
    if ctype == "NULL":
        return 0
    raise ChecksumError("unknown checksum type %r" % ctype)


def compute_checksums(data: bytes, bytes_per_checksum: int, ctype: str) -> List[int]:
    """Per-chunk checksums as written by an HDFS block writer."""
    if bytes_per_checksum <= 0:
        raise ChecksumError("bytes-per-checksum must be positive, got %d"
                            % bytes_per_checksum)
    return [_crc(data[i:i + bytes_per_checksum], ctype)
            for i in range(0, max(len(data), 1), bytes_per_checksum)]


def verify_checksums(data: bytes, checksums: Sequence[int],
                     bytes_per_checksum: int, ctype: str) -> None:
    """Verify data against stored checksums using *this node's* settings.

    A node whose ``bytes_per_checksum`` or checksum type differs from the
    writer's recomputes different values and fails, exactly like a
    DataNode verifying a replica streamed from a differently-configured
    peer (Table 3: dfs.bytes-per-checksum, dfs.checksum.type).
    """
    if ctype == "NULL" and all(c == 0 for c in checksums):
        return
    expected = compute_checksums(data, bytes_per_checksum, ctype)
    if list(checksums) != expected:
        raise ChecksumError(
            "checksum mismatch: %d stored vs %d computed chunks (type=%s, bpc=%d)"
            % (len(checksums), len(expected), ctype, bytes_per_checksum))


# ---------------------------------------------------------------------------
# SASL-style protection negotiation (hadoop.rpc.protection,
# dfs.data.transfer.protection)
# ---------------------------------------------------------------------------
SASL_LEVELS = ("authentication", "integrity", "privacy")


def negotiate_sasl(client_level: str, server_level: str, what: str = "rpc") -> str:
    """Negotiate a SASL QOP; mismatched single-valued QOP lists fail.

    Hadoop nodes advertise exactly the QOP from their configuration; when
    client and server advertise disjoint lists the SASL handshake aborts
    ("RPC client fails to connect to RPC servers", Table 3).
    """
    for level in (client_level, server_level):
        if level not in SASL_LEVELS:
            raise SaslError("invalid %s protection level %r" % (what, level))
    if client_level != server_level:
        raise SaslError(
            "%s SASL negotiation failed: client offers %r, server requires %r"
            % (what, client_level, server_level))
    return client_level
