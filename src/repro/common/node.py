"""Node base class and the init-scope annotation (§6.3 startInit/stopInit).

Every simulated node type (NameNode, TaskManager, HRegionServer, ...)
derives from :class:`Node` and wraps its initialization in
:func:`node_init`, which is the Python rendering of the paper's
``ConfAgent.startInit(this, 'Server') ... ConfAgent.stopInit()``
annotation pair (Fig. 2b lines 14/21).  Inside that scope, configuration
objects the node creates are mapped to it by Rule 1.1, and
:func:`repro.common.configuration.ref_to_clone` maps the clone of a
unit-test-provided conf to the node by Rule 2.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.common.configuration import Configuration, ref_to_clone
from repro.common.errors import NodeStateError
from repro.core.confagent import current_agent

#: Application name -> node type names, as investigated by the paper
#: (Table 2).  Populated by each app package at import time.
NODE_TYPES: Dict[str, List[str]] = {}


def register_node_type(app: str, node_type: str) -> None:
    types = NODE_TYPES.setdefault(app, [])
    if node_type not in types:
        types.append(node_type)


@contextmanager
def node_init(node: "Node") -> Iterator[None]:
    """Annotate the dynamic extent of a node's initialization function."""
    current_agent().start_init(node, node.node_type)
    try:
        yield
    finally:
        current_agent().stop_init()


class Node:
    """Base class for all simulated cluster nodes.

    Subclasses must set :attr:`node_type` and perform all configuration
    handling inside a ``with node_init(self):`` block in ``__init__``.
    The base constructor replaces the caller-provided conf reference with
    a clone via :func:`ref_to_clone` — the one-line source modification
    the paper asks of application developers.
    """

    node_type = "Node"

    def __init__(self, conf: Configuration, cluster: "Any") -> None:
        self.conf = ref_to_clone(conf)
        self.cluster = cluster
        self.sim = cluster.sim
        self._running = False
        self._periodic_tasks: List[Any] = []
        #: fault-injection crash cycles survived (see repro.common.faults).
        self.crashes = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            raise NodeStateError("%s already started" % self)
        self._running = True

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        for task in self._periodic_tasks:
            task.stop()
        self._periodic_tasks = []

    def crash(self) -> None:
        """Fault-injection hook: hard-stop the node mid-test.

        Semantically a process kill: periodic daemons die with it (they
        are not resurrected until :meth:`restart` runs the subclass's
        ``start``), and anything that calls :meth:`ensure_running` in the
        outage window fails like it would against a dead JVM.
        """
        if self._running:
            self.crashes += 1
            self.stop()

    def restart(self) -> None:
        """Fault-injection hook: bring a crashed node back up."""
        if not self._running:
            self.start()

    def ensure_running(self) -> None:
        if not self._running:
            raise NodeStateError("%s is not running" % self)

    def add_periodic(self, task: Any) -> Any:
        self._periodic_tasks.append(task)
        return task

    def __repr__(self) -> str:
        return "<%s at sim=%r>" % (type(self).__name__, getattr(self, "sim", None))
