"""Batched RNG draws for the hot app-simulation loops.

App suites draw hundreds of small random values per execution
(``bytes(ctx.rng.randrange(256) for _ in range(2048))`` and friends);
each ``randrange`` call costs two Python frames (``randrange`` →
``_randbelow``) before reaching the C ``getrandbits``.
:func:`randrange_block` pre-draws a whole block through the C method
directly.

Seeds are part of the findings contract — the execution cache keys
seed-sensitive outcomes by the exact draw sequence — so the fast path
must consume the underlying Mersenne stream *bit-for-bit* like the
per-call loop.  It replicates CPython's
``Random._randbelow_with_getrandbits`` exactly: ``k = bound.bit_length()``
bits per attempt, rejecting draws ``>= bound``.  Per-seed stream
equality fast-vs-legacy is asserted in tests/test_rngblock.py.
"""

from __future__ import annotations

import random
from typing import List

import repro.perf as perf


def randrange_block(rng: random.Random, bound: int, count: int) -> List[int]:
    """``[rng.randrange(bound) for _ in range(count)]``, batched.

    Byte-identical to the comprehension for any ``random.Random`` (or
    subclass) whose ``_randbelow`` is the stock getrandbits-based
    rejection sampler — i.e. every seeded generator in this codebase.
    """
    if count <= 0:
        return []
    if bound <= 0:
        raise ValueError("empty range for randrange_block(%d)" % bound)
    if not perf.FAST_PATH:
        return [rng.randrange(bound) for _ in range(count)]
    k = bound.bit_length()
    out: List[int] = []
    append = out.append
    # The first draw goes through the (possibly tracking) bound method so
    # wrappers like the runner's _TrackedRandom still see usage; it may
    # rebind the attribute to the raw C method, so re-fetch afterwards.
    getrandbits = rng.getrandbits
    r = getrandbits(k)
    while r >= bound:
        r = getrandbits(k)
    append(r)
    getrandbits = rng.getrandbits
    for _ in range(count - 1):
        r = getrandbits(k)
        while r >= bound:
            r = getrandbits(k)
        append(r)
    return out
