"""Deterministic discrete-event simulation kernel.

All timing behaviour in the simulated cloud systems (heartbeats, socket
timeouts, bandwidth throttling, congestion-control back-off) runs on
*simulated* time provided by :class:`Simulator`.  This keeps the corpus
unit tests deterministic and lets a test that covers minutes of cluster
time finish in microseconds of wall time — the paper's unit tests "can
take a long time (e.g., several minutes), because they need to wait for a
cluster to be set up" (§4); ours do not.

The kernel is intentionally small and SimPy-flavoured:

* ``sim.schedule(delay, fn, *args)`` runs a plain callback later.
* ``sim.spawn(generator)`` starts a cooperative *process*.  A process is a
  generator that yields:

  - a number        — sleep that many simulated seconds,
  - an :class:`Event` — suspend until the event triggers (its value is
    sent back into the generator; a failed event re-raises inside it),
  - a :class:`Process` — join another process (same semantics as waiting
    for its completion event).

* ``sim.run()`` / ``sim.run_until(t)`` / ``sim.run_for(dt)`` advance time.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotonically increasing sequence number breaks ties).
"""

from __future__ import annotations

import heapq
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Generator, Iterator, List, Optional, Tuple

import repro.perf as perf


class SimulationError(Exception):
    """Internal kernel misuse (e.g. waiting on an already-consumed event)."""


class SimTimeLimitExceeded(SimulationError):
    """A simulator advanced past the watchdog budget set by
    :func:`sim_time_limit` — the simulated-time analogue of a JUnit
    ``@Test(timeout=...)`` killing a runaway test."""


#: Simulated-time budget inherited by every Simulator created in scope.
_TIME_LIMIT: ContextVar[Optional[float]] = ContextVar(
    "sim_time_limit", default=None)


class _KernelStats(threading.local):
    """Volatile per-thread counters for the ``zc_runtime_sim_*`` metrics.

    Thread-local so concurrently running profiles on the thread backend
    attribute their own deltas; forked process workers inherit a private
    copy.  These feed *volatile* metrics only — they describe how much
    work the kernel avoided, never the simulated outcome.
    """

    def __init__(self) -> None:
        self.timers_cancelled = 0
        self.heap_compactions = 0
        self.timers_compacted = 0


KERNEL_STATS = _KernelStats()


def kernel_stats_snapshot() -> Tuple[int, int, int]:
    """(cancelled, compactions, compacted-entries) for the calling thread."""
    stats = KERNEL_STATS
    return (stats.timers_cancelled, stats.heap_compactions,
            stats.timers_compacted)


#: Compaction trigger: sweep the heap once at least this many cancelled
#: entries are buried in it *and* they outnumber the live ones.  Small
#: heaps never compact (the sweep would cost more than the pops saved).
COMPACT_MIN_CANCELLED = 64


@contextmanager
def sim_time_limit(limit: Optional[float]) -> Iterator[None]:
    """Bound the simulated lifetime of Simulators built in this scope.

    Any simulator constructed while the context is active raises
    :class:`SimTimeLimitExceeded` from ``run()`` when it would advance
    past ``limit`` simulated seconds.  TestRunner wraps every unit-test
    execution in this watchdog so a fault-perturbed (or simply buggy)
    test cannot consume unbounded scheduling work.
    """
    token = _TIME_LIMIT.set(limit)
    try:
        yield
    finally:
        _TIME_LIMIT.reset(token)


class Event:
    """A one-shot occurrence that processes can wait on.

    An event either *succeeds* with a value or *fails* with an exception.
    Processes waiting on it are resumed at the simulated instant it
    triggers.
    """

    __slots__ = ("sim", "_triggered", "_value", "_exception", "_waiters",
                 "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._triggered = False
        self._value: Any = None
        self._exception: Optional[BaseException] = None
        self._waiters: List["Process"] = []
        self._callbacks: List[Callable[[], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event has not triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self._wake()
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._exception = exception
        self._wake()
        return self

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim._schedule_resume(process, self)
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, callback)

    def _add_waiter(self, process: "Process") -> None:
        if self._triggered:
            self.sim._schedule_resume(process, self)
        else:
            self._waiters.append(process)

    def on_trigger(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` (at the trigger instant) when this event fires.

        Unlike spawning a watcher process, a callback holds no heap entry
        and no live generator while it waits — racing helpers like
        :func:`repro.common.network.timed_wait` use this so the losing
        side of a race leaves nothing behind.
        """
        if self._triggered:
            self.sim.schedule(0.0, callback)
        else:
            self._callbacks.append(callback)


class Timer:
    """Handle for a scheduled callback; supports cancellation.

    ``_sim`` back-references the owning simulator *while the timer sits in
    its heap* so a cancel can be accounted O(1); it is detached the moment
    the entry is popped (fired or swept).  A ``cancel()`` that arrives
    after that — a handle kept across the timer firing, or outliving the
    simulator the test tore down — degrades to a pure flag write instead
    of corrupting the live-timer count.
    """

    __slots__ = ("_cancelled", "when", "callback", "args", "_sim")

    def __init__(self, when: float, callback: Callable[..., Any],
                 args: Tuple[Any, ...], sim: Optional["Simulator"] = None):
        self._cancelled = False
        self.when = when
        self.callback = callback
        self.args = args
        self._sim = sim

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Process:
    """A cooperative task driven by the simulator.

    The completion of a process behaves like an event: other processes may
    ``yield`` it to join, and :meth:`Simulator.run_process` uses it to run
    a process to completion synchronously from test code.
    """

    __slots__ = ("sim", "name", "_generator", "_done", "_result",
                 "_exception", "_waiters")

    def __init__(self, sim: "Simulator", generator: Generator, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._waiters: List["Process"] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError("process %s has not finished" % self.name)
        if self._exception is not None:
            raise self._exception
        return self._result

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    # -- event-like protocol so processes can be yielded (joined) --------
    @property
    def triggered(self) -> bool:
        return self._done

    def _add_waiter(self, process: "Process") -> None:
        if self._done:
            self.sim._schedule_resume(process, self)
        else:
            self._waiters.append(process)

    def _resume_value(self) -> Any:
        if self._exception is not None:
            raise self._exception
        return self._result

    def _step(self, send_value: Any = None, throw: Optional[BaseException] = None) -> None:
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send_value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate to joiners
            self._finish(exception=exc)
            return
        self.sim._wait_on(self, target)

    def _finish(self, result: Any = None, exception: Optional[BaseException] = None) -> None:
        self._done = True
        self._result = result
        self._exception = exception
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            self.sim._schedule_resume(process, self)
        if exception is not None and not waiters:
            self.sim._record_crash(self, exception)


class Simulator:
    """Deterministic event loop over simulated seconds."""

    __slots__ = ("_now", "_seq", "_heap", "_live", "_cancelled_in_heap",
                 "crashed_processes", "time_limit", "jitter_fn")

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Tuple[float, int, Timer]] = []
        #: number of heap entries whose timer is not cancelled — kept
        #: exact so pending_events() is O(1) instead of an O(n) scan.
        self._live = 0
        #: cancelled entries still buried in the heap; drives compaction.
        self._cancelled_in_heap = 0
        self.crashed_processes: List[Tuple[Process, BaseException]] = []
        #: watchdog: raise once the loop would advance past this instant.
        self.time_limit: Optional[float] = _TIME_LIMIT.get()
        #: fault-injection hook: perturb every positive scheduling delay
        #: (see repro.common.faults; None keeps the kernel exact).
        self.jitter_fn: Optional[Callable[[float], float]] = None

    # ------------------------------------------------------------------
    # time and scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Timer:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError("delay must be non-negative, got %r" % delay)
        if self.jitter_fn is not None and delay > 0:
            delay = self.jitter_fn(delay)
        timer = Timer(self._now + delay, callback, args, self)
        self._seq = seq = self._seq + 1
        heapq.heappush(self._heap, (timer.when, seq, timer))
        self._live += 1
        return timer

    def _note_cancel(self) -> None:
        """O(1) accounting for a timer cancelled while still in the heap."""
        self._live -= 1
        cancelled = self._cancelled_in_heap = self._cancelled_in_heap + 1
        KERNEL_STATS.timers_cancelled += 1
        # Heartbeat/timeout-reset patterns cancel timers far faster than
        # the loop pops them; once the dead entries dominate, sweep them
        # in one pass instead of paying log(bloated n) on every push/pop.
        if (cancelled >= COMPACT_MIN_CANCELLED and cancelled > self._live
                and perf.FAST_PATH):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries from the heap, **in place**.

        ``run()`` holds a local reference to the heap list while callbacks
        execute, and a callback's ``cancel()`` can trigger this sweep
        mid-run — so the list object must survive (slice-assign, never
        rebind).  Entry order within the heap may change, but pops are
        ordered by the ``(when, seq)`` keys, which are untouched:
        observable event order is identical.
        """
        heap = self._heap
        survivors = [entry for entry in heap if not entry[2]._cancelled]
        swept = len(heap) - len(survivors)
        heap[:] = survivors
        heapq.heapify(heap)
        self._cancelled_in_heap = 0
        KERNEL_STATS.heap_compactions += 1
        KERNEL_STATS.timers_compacted += swept

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that succeeds after ``delay`` simulated seconds."""
        ev = Event(self)
        self.schedule(delay, self._succeed_if_pending, ev, value)
        return ev

    @staticmethod
    def _succeed_if_pending(ev: Event, value: Any) -> None:
        if not ev.triggered:
            ev.succeed(value)

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a process; it takes its first step at the current instant."""
        process = Process(self, generator, name=name)
        self.schedule(0.0, process._step)
        return process

    def run_process(self, generator: Generator, name: str = "",
                    max_time: float = float("inf")) -> Any:
        """Spawn a process and run the simulation until it completes.

        Returns the process result, re-raising any exception it raised.
        Used by corpus unit tests to perform "synchronous" operations that
        consume simulated time (e.g. a client writing a block through a
        throttled pipeline).
        """
        process = self.spawn(generator, name=name)
        self.run(until_done=process, max_time=max_time)
        if not process.done:
            raise SimulationError(
                "process %s did not finish by simulated time %s"
                % (process.name, max_time))
        # This caller observes the outcome (result or re-raised
        # exception), so the process must not linger as an unobserved
        # crash for raise_crashes() to report a second time.
        self.crashed_processes = [(p, e) for p, e in self.crashed_processes
                                  if p is not process]
        return process.result

    def _wait_on(self, process: Process, target: Any) -> None:
        if isinstance(target, (int, float)):
            self.schedule(float(target), process._step)
        elif isinstance(target, (Event, Process)):
            target._add_waiter(process)
        else:
            process._step(throw=SimulationError(
                "process %s yielded unsupported %r" % (process.name, target)))

    def _schedule_resume(self, process: Process, source: Any) -> None:
        self.schedule(0.0, self._resume, process, source)

    @staticmethod
    def _resume(process: Process, source: Any) -> None:
        if isinstance(source, Process):
            if source._exception is not None:
                process._step(throw=source._exception)
            else:
                process._step(send_value=source._result)
        elif isinstance(source, Event):
            if source._exception is not None:
                process._step(throw=source._exception)
            else:
                process._step(send_value=source._value)
        else:  # pragma: no cover - defensive
            process._step(send_value=source)

    def _record_crash(self, process: Process, exception: BaseException) -> None:
        self.crashed_processes.append((process, exception))

    def raise_crashes(self) -> None:
        """Re-raise the first unobserved process crash, if any.

        Corpus unit tests call this (via their cluster helpers) so that a
        background failure — e.g. a heartbeat decode error — fails the
        test, the way an uncaught exception in a JVM daemon thread fails a
        JUnit test through an uncaught-exception handler.
        """
        if self.crashed_processes:
            _, exc = self.crashed_processes[0]
            raise exc

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, max_time: float = float("inf"),
            until_done: Optional[Process] = None) -> None:
        """Process events until the heap drains, ``max_time`` passes, or
        ``until_done`` completes."""
        # The loop dominates every unit-test execution, so its hot names
        # are bound locally.  ``heap`` stays valid across _compact(),
        # which mutates the list in place rather than rebinding it.
        heap = self._heap
        heappop = heapq.heappop
        time_limit = self.time_limit
        while heap:
            if until_done is not None and until_done._done:
                return
            entry = heap[0]
            when = entry[0]
            if when > max_time:
                self._now = max_time
                return
            heappop(heap)
            timer = entry[2]
            if timer._cancelled:
                self._cancelled_in_heap -= 1
                continue
            # Detach before firing: a cancel() on this handle from now on
            # must not decrement the live count a second time.
            timer._sim = None
            self._live -= 1
            if time_limit is not None and when > time_limit:
                self._now = time_limit
                raise SimTimeLimitExceeded(
                    "simulation exceeded its %.0fs simulated-time budget"
                    % time_limit)
            self._now = when
            timer.callback(*timer.args)
        if max_time != float("inf"):
            self._now = max(self._now, max_time)

    def run_until(self, time: float) -> None:
        """Advance simulated time to ``time``, processing due events."""
        if time < self._now:
            raise ValueError("cannot run backwards: now=%s target=%s"
                             % (self._now, time))
        self.run(max_time=time)

    def run_for(self, duration: float) -> None:
        self.run_until(self._now + duration)

    def pending_events(self) -> int:
        if perf.FAST_PATH:
            return self._live
        return sum(1 for _, _, t in self._heap if not t.cancelled)


class PeriodicTask:
    """Re-schedules a callback every ``interval`` simulated seconds.

    The interval is re-read through ``interval_fn`` on every tick, so a
    node whose configuration is reconfigured (or heterogeneously assigned)
    immediately honours the new cadence — this mirrors daemons that sleep
    ``conf.get(...)`` milliseconds per loop iteration.
    """

    __slots__ = ("sim", "interval_fn", "callback", "jitter_fn", "_stopped",
                 "_timer")

    def __init__(self, sim: Simulator, interval_fn: Callable[[], float],
                 callback: Callable[[], Any], jitter_fn: Optional[Callable[[], float]] = None,
                 start_delay: Optional[float] = None) -> None:
        self.sim = sim
        self.interval_fn = interval_fn
        self.callback = callback
        self.jitter_fn = jitter_fn
        self._stopped = False
        first = interval_fn() if start_delay is None else start_delay
        self._timer = sim.schedule(first, self._tick)

    def stop(self) -> None:
        self._stopped = True
        self._timer.cancel()

    def _tick(self) -> None:
        if self._stopped:
            return
        self.callback()
        if self._stopped:  # callback may stop the task
            return
        interval = self.interval_fn()
        if self.jitter_fn is not None:
            interval += self.jitter_fn()
        self._timer = self.sim.schedule(max(interval, 0.0), self._tick)
