"""http/https policy-aware embedded web endpoints.

``dfs.http.policy`` and ``yarn.http.policy`` select which schemes a
daemon's web server binds (HTTP_ONLY, HTTPS_ONLY, HTTP_AND_HTTPS) and
which scheme *clients* use to reach it.  A client whose policy says
"https" cannot connect to a server that only bound http — the Table-3
failures for DFSck and the YARN Timeline web services.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.common.errors import ConfigurationError, ConnectError

HTTP_POLICIES = ("HTTP_ONLY", "HTTPS_ONLY", "HTTP_AND_HTTPS")


def schemes_served(policy: str) -> Tuple[str, ...]:
    if policy == "HTTP_ONLY":
        return ("http",)
    if policy == "HTTPS_ONLY":
        return ("https",)
    if policy == "HTTP_AND_HTTPS":
        return ("http", "https")
    raise ConfigurationError("invalid http policy %r" % policy)


def client_scheme(policy: str) -> str:
    """The scheme a client-side tool picks under a given policy."""
    if policy == "HTTPS_ONLY":
        return "https"
    if policy in ("HTTP_ONLY", "HTTP_AND_HTTPS"):
        return "http"
    raise ConfigurationError("invalid http policy %r" % policy)


class HttpServer:
    """A daemon's embedded web server (one per NameNode, RM, Timeline...)."""

    def __init__(self, owner: str, policy: str) -> None:
        self.owner = owner
        self.schemes = schemes_served(policy)
        self._handlers: Dict[str, Callable[..., Any]] = {}
        self.requests_served: List[Tuple[str, str]] = []

    def route(self, path: str, handler: Callable[..., Any]) -> None:
        self._handlers[path] = handler

    def handle(self, scheme: str, path: str, *args: Any, **kwargs: Any) -> Any:
        if scheme not in self.schemes:
            raise ConnectError(
                "connection refused: %s serves %s but client used %s://"
                % (self.owner, "/".join(self.schemes), scheme))
        if path not in self._handlers:
            raise ConnectError("404: %s has no route %s" % (self.owner, path))
        self.requests_served.append((scheme, path))
        return self._handlers[path](*args, **kwargs)


def http_get(server: HttpServer, client_policy: str, path: str,
             *args: Any, **kwargs: Any) -> Any:
    """Issue a request using the scheme the *client's* policy selects."""
    return server.handle(client_scheme(client_policy), path, *args, **kwargs)
