"""Simulated network primitives: bandwidth throttling and timed waits.

The interesting Table-3 timing bugs (balancer bandwidth overload,
congestion-control collapse, socket timeouts) come from nodes *pacing*
their I/O according to their own configuration.  The primitives here run
on the discrete-event simulator so those interactions are reproduced
deterministically:

* :class:`BandwidthThrottler` — the DataXceiver-style token bucket behind
  ``dfs.datanode.balance.bandwidthPerSec``.
* :func:`timed_wait` — wait for an event with a deadline, raising
  :class:`~repro.common.errors.SocketTimeout` like a socket read with
  ``SO_TIMEOUT`` set.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.common.errors import SocketTimeout
from repro.common.faults import current_injector
from repro.common.simulation import Event, Simulator


class BandwidthThrottler:
    """Token-bucket throttler over simulated time (HDFS DataTransferThrottler).

    ``rate_fn`` is re-read on every acquisition so online reconfiguration
    of the bandwidth cap takes effect immediately, matching HDFS-2202.
    Use from inside a simulation process::

        yield from throttler.acquire(num_bytes)
    """

    def __init__(self, sim: Simulator, rate_fn: Callable[[], float],
                 burst_seconds: float = 1.0) -> None:
        self.sim = sim
        self.rate_fn = rate_fn
        self.burst_seconds = burst_seconds
        self._available = rate_fn() * burst_seconds
        self._last_refill = sim.now
        self.total_throttled_time = 0.0

    def _refill(self) -> None:
        rate = max(self.rate_fn(), 1e-9)
        elapsed = self.sim.now - self._last_refill
        self._last_refill = self.sim.now
        cap = rate * self.burst_seconds
        self._available = min(cap, self._available + elapsed * rate)

    def acquire(self, nbytes: float) -> Generator:
        """Process-style acquisition: sleeps until ``nbytes`` of quota exist.

        A request larger than the bucket's burst capacity waits for a full
        bucket and then overdrafts it (available goes negative), so later
        acquisitions repay the deficit — matching HDFS's throttler, which
        debits first and sleeps off the overrun.
        """
        while True:
            self._refill()
            rate = max(self.rate_fn(), 1e-9)
            needed = min(nbytes, rate * self.burst_seconds)
            if self._available >= needed:
                self._available -= nbytes
                return
            # The epsilon guarantees the refill strictly covers the request,
            # preventing a floating-point spin of ~1e-12s sleeps.
            wait = (needed - self._available) / rate + 1e-6
            wait *= current_injector().io_slowdown()
            self.total_throttled_time += wait
            yield wait

    def would_block(self, nbytes: float) -> bool:
        self._refill()
        return self._available < nbytes

    def force_debit(self, nbytes: float) -> None:
        """Charge quota for bytes that *already* hit the wire.

        A DataNode cannot refuse packets that have arrived; it debits its
        balancing-bandwidth budget after the fact and throttles all
        subsequent traffic until the (possibly deep) deficit refills —
        the mechanism behind the paper's bandwidthPerSec case study.
        """
        self._refill()
        self._available -= nbytes

    def wait_until_clear(self) -> Generator:
        """Process helper: sleep until the quota deficit is repaid."""
        while True:
            self._refill()
            if self._available >= 0:
                return
            rate = max(self.rate_fn(), 1e-9)
            wait = -self._available / rate + 1e-6
            wait *= current_injector().io_slowdown()
            self.total_throttled_time += wait
            yield wait

    @property
    def deficit(self) -> float:
        self._refill()
        return max(0.0, -self._available)


def timed_wait(sim: Simulator, event: Event, timeout: float,
               what: str = "socket read") -> Generator:
    """Wait for ``event`` with a deadline (process helper).

    Yields the event's value on success; raises
    :class:`~repro.common.errors.SocketTimeout` when ``timeout`` simulated
    seconds pass first.

    The race leaves nothing behind once it resolves: the deadline timer
    is cancelled when the event wins, and the event side is a trigger
    callback rather than a watcher process — so the losing side neither
    inflates :meth:`Simulator.pending_events` nor keeps a dead generator
    alive (it used to do both).
    """
    race = sim.event()

    def _on_deadline() -> None:
        if not race.triggered:
            race.fail(SocketTimeout("%s timed out after %.3fs" % (what, timeout)))

    deadline_timer = sim.schedule(timeout, _on_deadline)

    if current_injector().drop_message(what):
        # The awaited bytes never arrive; only the deadline can resolve
        # the race.  (The real event may still trigger for other waiters.)
        value = yield race
        return value

    def _on_event() -> None:
        if not race.triggered:
            deadline_timer.cancel()
            race.succeed(event.value if event.ok else None)

    event.on_trigger(_on_event)
    value = yield race
    return value
