"""YARN parameter registry (curated subset of yarn-default.xml)."""

from __future__ import annotations

from repro.apps.commonlib.params import COMMON_REGISTRY
from repro.common.params import (BOOL, DURATION_MS, ENUM, FLOAT, INT, SIZE,
                                 STR, ParamRegistry)

YARN_REGISTRY = ParamRegistry("yarn")
_d = YARN_REGISTRY.define

# ---------------------------------------------------------------------------
# Table 3: heterogeneous-unsafe YARN parameters
# ---------------------------------------------------------------------------
_d("yarn.http.policy", ENUM, "HTTP_ONLY",
   values=("HTTP_ONLY", "HTTPS_ONLY", "HTTP_AND_HTTPS"), tags=("wire-format",),
   description="Schemes served by (and used against) YARN web endpoints.")
_d("yarn.resourcemanager.delegation.token.renew-interval", DURATION_MS,
   86400000, candidates=(86400000, 864000), tags=("inconsistency",),
   description="Lifetime added to delegation tokens at issue/renew time.")
_d("yarn.scheduler.maximum-allocation-mb", SIZE, 8192,
   candidates=(8192, 1024), tags=("max-limit",),
   description="Largest container memory the scheduler will grant.")
_d("yarn.scheduler.maximum-allocation-vcores", INT, 4, candidates=(4, 1),
   tags=("max-limit",),
   description="Largest container vcore count the scheduler will grant.")
_d("yarn.timeline-service.enabled", BOOL, False,
   description="Whether clients publish to (and the AHS runs) the "
               "timeline service.")

# ---------------------------------------------------------------------------
# the private-observability false positive (§7.1)
# ---------------------------------------------------------------------------
_d("yarn.nodemanager.vmem-pmem-ratio", FLOAT, 2.1, candidates=(2.1, 10.0),
   description="Virtual/physical memory enforcement ratio (internal; the "
               "YARN private-API FP).")

# ---------------------------------------------------------------------------
# safe parameters read by nodes
# ---------------------------------------------------------------------------
_d("yarn.nodemanager.resource.memory-mb", SIZE, 8192,
   candidates=(8192, 16384),
   description="Memory a NodeManager offers the scheduler.")
_d("yarn.nodemanager.resource.cpu-vcores", INT, 8, candidates=(8, 16),
   description="Vcores a NodeManager offers the scheduler.")
_d("yarn.resourcemanager.scheduler.class", STR,
   "org.apache.hadoop.yarn.server.resourcemanager.scheduler.capacity.CapacityScheduler",
   description="Scheduler implementation.")
_d("yarn.scheduler.minimum-allocation-mb", SIZE, 1024,
   description="Smallest container memory granted.")
_d("yarn.resourcemanager.am.max-attempts", INT, 2,
   description="Global ApplicationMaster retry budget.")
_d("yarn.nm.liveness-monitor.expiry-interval-ms", DURATION_MS, 600000,
   description="Silence after which a NodeManager is lost.")
_d("yarn.timeline-service.ttl-ms", DURATION_MS, 604800000,
   description="Retention of timeline entities.")
_d("yarn.acl.enable", BOOL, False,
   description="Enable YARN ACLs.")
_d("yarn.log-aggregation-enable", BOOL, False,
   description="Aggregate container logs to the filesystem.")

# ---------------------------------------------------------------------------
# documented parameters never read by the corpus
# ---------------------------------------------------------------------------
_d("yarn.resourcemanager.address", STR, "0.0.0.0:8032",
   description="RM client RPC address.")
_d("yarn.resourcemanager.webapp.address", STR, "0.0.0.0:8088",
   description="RM web address.")
_d("yarn.nodemanager.address", STR, "0.0.0.0:0",
   description="NM container-management address.")
_d("yarn.nodemanager.local-dirs", STR, "/tmp/nm-local-dir",
   description="NM local storage.")
_d("yarn.nodemanager.log-dirs", STR, "/tmp/nm-logs",
   description="NM log storage.")
_d("yarn.resourcemanager.recovery.enabled", BOOL, False,
   description="Recover RM state on restart.")
_d("yarn.resourcemanager.ha.enabled", BOOL, False,
   description="Enable ResourceManager HA.")
_d("yarn.scheduler.fair.preemption", BOOL, False,
   description="FairScheduler preemption.")
_d("yarn.timeline-service.hostname", STR, "0.0.0.0",
   description="Timeline service host.")

# ---------------------------------------------------------------------------
# wiring-audit fixtures: deliberately mis-wired parameters that the audit
# (repro.core.audit) must flag.  Tagged so tests and CI can assert the
# verdicts without hard-coding names elsewhere.
# ---------------------------------------------------------------------------
_d("yarn.nodemanager.disk-health-checker.enable", BOOL, True,
   tags=("audit-fixture-unread",),
   description="Audit fixture: documented but wired to no runtime path.")
_d("yarn.nodemanager.container-metrics.period-ms", DURATION_MS, 3000,
   candidates=(3000, 30), tags=("audit-fixture-inert",),
   description="Audit fixture: read at NodeManager init, value never used.")

#: YARN applications see Hadoop Common's parameters too (Table 1).
YARN_FULL_REGISTRY = YARN_REGISTRY.merged_with(COMMON_REGISTRY)
