"""YARN nodes: ResourceManager, NodeManager, ApplicationHistoryServer."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import AllocationError, ConnectError
from repro.common.httpserver import HttpServer
from repro.common.ipc import RpcClient, RpcServer
from repro.common.node import Node, node_init, register_node_type
from repro.common.security import DelegationTokenManager

register_node_type("yarn", "ResourceManager")
register_node_type("yarn", "NodeManager")
register_node_type("yarn", "ApplicationHistoryServer")


class ResourceManager(Node):
    node_type = "ResourceManager"

    def __init__(self, conf: Any, cluster: Any, rm_id: str = "rm0") -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.rm_id = rm_id
            from repro.apps.yarn.conf import YarnConfiguration
            cluster.ensure_ipc(YarnConfiguration)
            self.rpc = RpcServer("ResourceManager-%s" % rm_id, self.conf)
            self.rpc.register("register_nodemanager", self.register_nodemanager)
            self.rpc.register("submit_application", self.submit_application)
            self.rpc.register("allocate", self.allocate)
            self.rpc.register("release_container", self.release_container)
            self.rpc.register("get_delegation_token", self.get_delegation_token)
            self.token_manager = DelegationTokenManager(
                renew_interval_fn=lambda: self.conf.get_int(
                    "yarn.resourcemanager.delegation.token.renew-interval")
                / 1000.0)
            self.nodemanagers: Dict[str, Dict[str, Any]] = {}
            self.applications: Dict[str, Dict[str, Any]] = {}
            self._scheduler_class = self.conf.get_str(
                "yarn.resourcemanager.scheduler.class")
            self._min_alloc_mb = self.conf.get_int(
                "yarn.scheduler.minimum-allocation-mb")
            self._am_max_attempts = self.conf.get_int(
                "yarn.resourcemanager.am.max-attempts")
            self._nm_expiry_ms = self.conf.get_int(
                "yarn.nm.liveness-monitor.expiry-interval-ms")

    # ------------------------------------------------------------------
    def register_nodemanager(self, nm_id: str, memory_mb: int,
                             vcores: int) -> bool:
        self.nodemanagers[nm_id] = {"memory_mb": memory_mb, "vcores": vcores,
                                    "used_mb": 0, "used_vcores": 0}
        return True

    def submit_application(self, app_id: str) -> bool:
        self.applications[app_id] = {"containers": []}
        return True

    def allocate(self, app_id: str, memory_mb: int, vcores: int) -> Dict[str, Any]:
        """Grant a container, validating the request against *this RM's*
        scheduler maximums (Table 3: yarn.scheduler.maximum-allocation-mb
        / -vcores — 'ResourceManager disallows value decreasement') and
        placing it on a NodeManager with sufficient free resources."""
        max_mb = self.conf.get_int("yarn.scheduler.maximum-allocation-mb")
        max_vcores = self.conf.get_int("yarn.scheduler.maximum-allocation-vcores")
        if memory_mb > max_mb:
            raise AllocationError(
                "requested %d MB exceeds the scheduler maximum of %d MB"
                % (memory_mb, max_mb))
        if vcores > max_vcores:
            raise AllocationError(
                "requested %d vcores exceeds the scheduler maximum of %d"
                % (vcores, max_vcores))
        nm_id = self._place(memory_mb, vcores)
        container = {"memory_mb": memory_mb, "vcores": vcores, "node": nm_id}
        self.applications[app_id]["containers"].append(container)
        return container

    def _place(self, memory_mb: int, vcores: int) -> str:
        """First-fit placement over registered NodeManager capacities."""
        for nm_id in sorted(self.nodemanagers):
            node = self.nodemanagers[nm_id]
            if (node["memory_mb"] - node["used_mb"] >= memory_mb
                    and node["vcores"] - node["used_vcores"] >= vcores):
                node["used_mb"] += memory_mb
                node["used_vcores"] += vcores
                return nm_id
        raise AllocationError(
            "no NodeManager has %d MB / %d vcores free" % (memory_mb, vcores))

    def release_container(self, app_id: str, container: Dict[str, Any]) -> bool:
        node = self.nodemanagers.get(container.get("node"))
        if node is not None:
            node["used_mb"] = max(node["used_mb"] - container["memory_mb"], 0)
            node["used_vcores"] = max(node["used_vcores"] - container["vcores"],
                                      0)
        containers = self.applications.get(app_id, {}).get("containers", [])
        if container in containers:
            containers.remove(container)
        return True

    def get_delegation_token(self) -> Dict[str, Any]:
        token = self.token_manager.issue(self.sim.now)
        return {"token_id": token.token_id, "issue_time": token.issue_time,
                "expiry_time": token.expiry_time, "issuer": self.rm_id}


class NodeManager(Node):
    node_type = "NodeManager"

    def __init__(self, conf: Any, cluster: Any, nm_id: str) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.nm_id = nm_id
            from repro.apps.yarn.conf import YarnConfiguration
            self.rpc_client = RpcClient(
                self.conf, ipc=cluster.ensure_ipc(YarnConfiguration))
            self._memory_mb = self.conf.get_int(
                "yarn.nodemanager.resource.memory-mb")
            self._vcores = self.conf.get_int(
                "yarn.nodemanager.resource.cpu-vcores")
            #: internal field behind the private-API false positive.
            self._vmem_pmem_ratio = self.conf.get_float(
                "yarn.nodemanager.vmem-pmem-ratio")
            self._log_aggregation = self.conf.get_bool(
                "yarn.log-aggregation-enable")
            # audit fixture: read but inert — nothing consumes this value
            self._container_metrics_period_ms = self.conf.get_int(
                "yarn.nodemanager.container-metrics.period-ms")

    def start(self) -> None:
        super().start()
        self.rpc_client.call(self.cluster.resourcemanager.rpc,
                             "register_nodemanager", self.nm_id,
                             self._memory_mb, self._vcores)


class ApplicationHistoryServer(Node):
    node_type = "ApplicationHistoryServer"

    def __init__(self, conf: Any, cluster: Any) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            #: the timeline collector only runs when *this server's*
            #: configuration enables it (Table 3:
            #: yarn.timeline-service.enabled).
            self.timeline_enabled = self.conf.get_bool(
                "yarn.timeline-service.enabled")
            self._ttl_ms = self.conf.get_int("yarn.timeline-service.ttl-ms")
            self.entities: List[Dict[str, Any]] = []
            self.http = HttpServer("ApplicationHistoryServer",
                                   self.conf.get_enum("yarn.http.policy"))
            self.http.route("/ws/v1/timeline", self._handle_timeline_query)
            self.http.route("/ws/v1/applicationhistory", self._handle_history)

    def post_entity(self, entity: Dict[str, Any]) -> None:
        if not self.timeline_enabled:
            raise ConnectError(
                "client fails to connect to the Timeline Server: the "
                "timeline service is not running on this host")
        self.entities.append(entity)

    def _handle_timeline_query(self) -> List[Dict[str, Any]]:
        return list(self.entities)

    def _handle_history(self) -> Dict[str, Any]:
        return {"entities": len(self.entities)}
