"""Mini-YARN: ResourceManager, NodeManager, ApplicationHistoryServer."""

from repro.apps.yarn.cluster import MiniYARNCluster, YarnClient
from repro.apps.yarn.conf import YarnConfiguration
from repro.apps.yarn.nodes import (ApplicationHistoryServer, NodeManager,
                                   ResourceManager)
from repro.apps.yarn.params import YARN_FULL_REGISTRY, YARN_REGISTRY

#: Paper ground truth (Table 3 / §7.1), used only by benches and tests.
EXPECTED_UNSAFE = (
    "yarn.http.policy",
    "yarn.resourcemanager.delegation.token.renew-interval",
    "yarn.scheduler.maximum-allocation-mb",
    "yarn.scheduler.maximum-allocation-vcores",
    "yarn.timeline-service.enabled",
)

EXPECTED_FALSE_POSITIVES = (
    "yarn.nodemanager.vmem-pmem-ratio",
)

__all__ = [
    "MiniYARNCluster", "YarnClient", "YarnConfiguration",
    "ApplicationHistoryServer", "NodeManager", "ResourceManager",
    "YARN_FULL_REGISTRY", "YARN_REGISTRY", "EXPECTED_UNSAFE",
    "EXPECTED_FALSE_POSITIVES",
]
