"""YARN-flavoured Configuration bound to the merged YARN registry."""

from __future__ import annotations

from repro.apps.yarn.params import YARN_FULL_REGISTRY
from repro.common.configuration import Configuration


class YarnConfiguration(Configuration):
    """``Configuration`` with yarn-default.xml + core-default.xml defaults."""

    registry = YARN_FULL_REGISTRY
