"""MiniYARNCluster and the YARN client helpers used by the corpus."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.yarn.nodes import (ApplicationHistoryServer, NodeManager,
                                   ResourceManager)
from repro.common.cluster import MiniCluster
from repro.common.httpserver import http_get
from repro.common.ipc import RpcClient


class MiniYARNCluster(MiniCluster):
    """RM(s), NodeManagers, and an optional ApplicationHistoryServer."""

    def __init__(self, conf: Any, num_nodemanagers: int = 2,
                 num_resourcemanagers: int = 1, with_ahs: bool = False) -> None:
        super().__init__()
        self.conf = conf
        self.resourcemanagers: List[ResourceManager] = []
        for index in range(num_resourcemanagers):
            self.resourcemanagers.append(self.add_node(
                ResourceManager(conf, self, rm_id="rm%d" % index)))
        self.nodemanagers: List[NodeManager] = []
        for index in range(num_nodemanagers):
            self.nodemanagers.append(self.add_node(
                NodeManager(conf, self, nm_id="nm%d" % index)))
        self.history_server: Optional[ApplicationHistoryServer] = None
        if with_ahs:
            self.history_server = self.add_node(
                ApplicationHistoryServer(conf, self))

    @property
    def resourcemanager(self) -> ResourceManager:
        return self.resourcemanagers[0]

    def start(self) -> None:
        for rm in self.resourcemanagers:
            rm.start()
        if self.history_server is not None:
            self.history_server.start()
        for nm in self.nodemanagers:
            nm.start()


class YarnClient:
    """Client-side YARN API; all decisions come from the *test's* conf."""

    def __init__(self, conf: Any, cluster: MiniYARNCluster) -> None:
        self.conf = conf
        self.cluster = cluster
        self.rpc = RpcClient(conf, ipc=cluster.ipc)

    def submit_application(self, app_id: str,
                           rm: Optional[Any] = None) -> None:
        rm = rm if rm is not None else self.cluster.resourcemanager
        self.rpc.call(rm.rpc, "submit_application", app_id)

    def request_container(self, app_id: str, memory_mb: int, vcores: int,
                          rm: Optional[Any] = None) -> Dict[str, Any]:
        rm = rm if rm is not None else self.cluster.resourcemanager
        return self.rpc.call(rm.rpc, "allocate", app_id, memory_mb, vcores)

    def get_delegation_token(self, rm: Optional[Any] = None) -> Dict[str, Any]:
        rm = rm if rm is not None else self.cluster.resourcemanager
        return self.rpc.call(rm.rpc, "get_delegation_token")

    # ------------------------------------------------------------------
    # timeline service
    # ------------------------------------------------------------------
    def publish_timeline_entity(self, entity: Dict[str, Any]) -> bool:
        """Publish an entity *if this client's* configuration says the
        timeline service exists (Table 3: yarn.timeline-service.enabled)."""
        if not self.conf.get_bool("yarn.timeline-service.enabled"):
            return False
        self.cluster.history_server.post_entity(entity)
        return True

    def query_timeline_web(self, path: str = "/ws/v1/timeline") -> Any:
        """Query the AHS web services using the scheme this client's
        policy selects (Table 3: yarn.http.policy)."""
        return http_get(self.cluster.history_server.http,
                        self.conf.get_enum("yarn.http.policy"), path)
