"""YARN corpus: scheduling limits, delegation tokens, timeline service."""

from __future__ import annotations

from repro.apps.yarn import MiniYARNCluster, YarnClient, YarnConfiguration
from repro.common.errors import TestFailure
from repro.core.registry import TestContext, unit_test


@unit_test("yarn", "TestSchedulerLimits.testMaxAllocationRequest",
           tags=("scheduler",))
def test_max_allocation_request(ctx: TestContext) -> None:
    """Request a container as large as *the client's* configured maximum;
    the ResourceManager validates against its own (Table 3:
    yarn.scheduler.maximum-allocation-mb / -vcores)."""
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=2) as cluster:
        cluster.start()
        client = YarnClient(conf, cluster)
        client.submit_application("app_limits_001")
        container = client.request_container(
            "app_limits_001",
            memory_mb=conf.get_int("yarn.scheduler.maximum-allocation-mb"),
            vcores=conf.get_int("yarn.scheduler.maximum-allocation-vcores"))
        if container["memory_mb"] <= 0:
            raise TestFailure("granted container has no memory")


@unit_test("yarn", "TestRMDelegationTokens.testRenewalOrdering",
           tags=("security", "inconsistency"))
def test_delegation_token_ordering(ctx: TestContext) -> None:
    """Tokens issued later must not expire before tokens issued earlier
    (Table 3: yarn.resourcemanager.delegation.token.renew-interval —
    'End users may observe newer tokens expire earlier than prior
    tokens')."""
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=1,
                         num_resourcemanagers=2) as cluster:
        cluster.start()
        client = YarnClient(conf, cluster)
        first = client.get_delegation_token(rm=cluster.resourcemanagers[0])
        cluster.run_for(10.0)
        second = client.get_delegation_token(rm=cluster.resourcemanagers[1])
        if second["expiry_time"] < first["expiry_time"]:
            raise TestFailure(
                "token %d issued at t=%.0f expires at %.0f, before token %d "
                "issued at t=%.0f (expires %.0f)"
                % (second["token_id"], second["issue_time"],
                   second["expiry_time"], first["token_id"],
                   first["issue_time"], first["expiry_time"]))


@unit_test("yarn", "TestTimelineService.testPublishEntity",
           tags=("timeline",))
def test_timeline_publish(ctx: TestContext) -> None:
    """Publish an entity if the client's configuration says the timeline
    service exists (Table 3: yarn.timeline-service.enabled)."""
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=1, with_ahs=True) as cluster:
        cluster.start()
        client = YarnClient(conf, cluster)
        published = client.publish_timeline_entity(
            {"entity": "app_timeline_001", "type": "YARN_APPLICATION"})
        if published and not cluster.history_server.entities:
            raise TestFailure("published entity vanished")


@unit_test("yarn", "TestAHSWebServices.testTimelineWebQuery",
           tags=("timeline", "web"))
def test_timeline_web_query(ctx: TestContext) -> None:
    """Query the AHS web services; client and server each pick their
    scheme from their own policy (Table 3: yarn.http.policy)."""
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=1, with_ahs=True) as cluster:
        cluster.start()
        client = YarnClient(conf, cluster)
        entities = client.query_timeline_web()
        if not isinstance(entities, list):
            raise TestFailure("timeline web query returned garbage")


@unit_test("yarn", "TestNodeManagerResource.testRegistration",
           tags=("nodemanager",))
def test_nodemanager_registration(ctx: TestContext) -> None:
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=3) as cluster:
        cluster.start()
        rm = cluster.resourcemanager
        if len(rm.nodemanagers) != 3:
            raise TestFailure("expected 3 registered NodeManagers, RM has %d"
                              % len(rm.nodemanagers))


@unit_test("yarn", "TestContainersMonitor.testVmemRatioInternals",
           observability="private", tags=("internals",),
           notes="§7.1 FP: asserts a NodeManager-internal field against "
                 "the test's configuration.")
def test_vmem_ratio_internals(ctx: TestContext) -> None:
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=1) as cluster:
        cluster.start()
        expected = conf.get_float("yarn.nodemanager.vmem-pmem-ratio")
        if cluster.nodemanagers[0]._vmem_pmem_ratio != expected:
            raise TestFailure("vmem enforcement internals diverged from "
                              "the test's configuration")


@unit_test("yarn", "TestRMRestart.testRacyRecovery", flaky=True,
           tags=("flaky",),
           notes="Nondeterministic: recovery races registration ~20% of "
                 "trials.")
def test_racy_rm_recovery(ctx: TestContext) -> None:
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=2) as cluster:
        cluster.start()
        if ctx.maybe(0.2):
            raise TestFailure("RM recovery raced NodeManager registration "
                              "and lost (timing-dependent)")


@unit_test("yarn", "TestResourceCalculator.testUnits", tags=("util",))
def test_resource_units(ctx: TestContext) -> None:
    """Node-free sanity test, filtered by the pre-run."""
    if 1024 * 8 != 8192:
        raise TestFailure("arithmetic broke")
