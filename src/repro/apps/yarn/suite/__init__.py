"""The YARN whole-system unit-test corpus ZebraConf reuses."""

import repro.apps.yarn.suite.yarn_tests  # noqa: F401
import repro.apps.yarn.suite.more_yarn_tests  # noqa: F401
