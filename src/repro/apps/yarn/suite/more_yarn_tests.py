"""YARN corpus: additional scheduling and history scenarios."""

from __future__ import annotations

from repro.apps.yarn import MiniYARNCluster, YarnClient, YarnConfiguration
from repro.common.errors import TestFailure
from repro.core.registry import TestContext, unit_test


@unit_test("yarn", "TestCapacityScheduler.testManySmallContainers",
           tags=("scheduler",))
def test_many_small_containers(ctx: TestContext) -> None:
    """Small requests are always below any sane maximum; the scheduler
    must grant them all."""
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=2) as cluster:
        cluster.start()
        client = YarnClient(conf, cluster)
        client.submit_application("app_small_001")
        for index in range(8):
            granted = client.request_container("app_small_001",
                                               memory_mb=256, vcores=1)
            if granted["memory_mb"] != 256:
                raise TestFailure("container %d granted wrong size" % index)
        app = cluster.resourcemanager.applications["app_small_001"]
        if len(app["containers"]) != 8:
            raise TestFailure("scheduler lost containers: %d of 8"
                              % len(app["containers"]))
        placed_on = {c["node"] for c in app["containers"]}
        if not placed_on:
            raise TestFailure("containers placed on no NodeManager")


@unit_test("yarn", "TestContainerAllocation.testReleaseFreesCapacity",
           tags=("scheduler",))
def test_release_frees_capacity(ctx: TestContext) -> None:
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=1) as cluster:
        cluster.start()
        client = YarnClient(conf, cluster)
        client.submit_application("app_release_001")
        big = min(conf.get_int("yarn.scheduler.maximum-allocation-mb"), 4096)
        first = client.request_container("app_release_001", memory_mb=big,
                                         vcores=1)
        client.rpc.call(cluster.resourcemanager.rpc, "release_container",
                        "app_release_001", first)
        second = client.request_container("app_release_001", memory_mb=big,
                                          vcores=1)
        if second["memory_mb"] != big:
            raise TestFailure("capacity not reclaimed after release")


@unit_test("yarn", "TestRMDelegationTokens.testSingleRMMonotonic",
           tags=("security",))
def test_single_rm_tokens_monotonic(ctx: TestContext) -> None:
    """Within one ResourceManager, later tokens never expire earlier —
    the single-node baseline of the Table-3 renew-interval anomaly."""
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=1) as cluster:
        cluster.start()
        client = YarnClient(conf, cluster)
        previous = client.get_delegation_token()
        for _ in range(3):
            cluster.run_for(5.0)
            token = client.get_delegation_token()
            if token["expiry_time"] < previous["expiry_time"]:
                raise TestFailure("token %d expires before its predecessor"
                                  % token["token_id"])
            previous = token


@unit_test("yarn", "TestTimelineEntities.testQueryReturnsPublished",
           tags=("timeline",))
def test_timeline_query_returns_published(ctx: TestContext) -> None:
    conf = YarnConfiguration()
    with MiniYARNCluster(conf, num_nodemanagers=1, with_ahs=True) as cluster:
        cluster.start()
        client = YarnClient(conf, cluster)
        published = 0
        for index in range(3):
            if client.publish_timeline_entity({"entity": "e%d" % index}):
                published += 1
        entities = client.query_timeline_web()
        if len(entities) != published:
            raise TestFailure("timeline stored %d of %d published entities"
                              % (len(entities), published))
