"""HDFS corpus: tests that produce the paper's false positives, tests
without nodes, and the uncertain-configuration-object scenario.

The metadata on these registrations (``realistic``, ``observability``,
``strict_assertion``) mirrors what the paper's authors read off the unit
tests during manual analysis; ZebraConf's detection never consults it —
only triage does.
"""

from __future__ import annotations

from repro.apps.hdfs import DFSClient, HdfsConfiguration, MiniDFSCluster
from repro.apps.hdfs.namespace import split_path
from repro.common.errors import TestFailure
from repro.common.wire import compute_checksums
from repro.core.registry import TestContext, unit_test


@unit_test("hdfs", "TestSafeMode.testThresholdInternals",
           observability="private", tags=("internals",),
           notes="§7.1 FP: asserts a NameNode-internal field against the "
                 "test's configuration; only private APIs expose it.")
def test_safemode_threshold_internal(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        expected = conf.get_float("dfs.namenode.safemode.threshold-pct")
        if cluster.namenode._safemode_threshold != expected:
            raise TestFailure("safe-mode threshold internals diverged from "
                              "the test's configuration")


@unit_test("hdfs", "TestReplicationMonitor.testWorkMultiplierInternals",
           observability="private", tags=("internals",))
def test_replication_work_multiplier_internal(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        expected = conf.get_int(
            "dfs.namenode.replication.work.multiplier.per.iteration")
        if cluster.namenode._replication_work_multiplier != expected:
            raise TestFailure("replication work multiplier internals "
                              "diverged from the test's configuration")


@unit_test("hdfs", "TestCacheDirectives.testRefreshIntervalInternals",
           observability="private", tags=("internals",))
def test_cache_refresh_interval_internal(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        expected = conf.get_int(
            "dfs.namenode.path.based.cache.refresh.interval.ms")
        if cluster.namenode._cache_refresh_interval_ms != expected:
            raise TestFailure("cache rescan interval internals diverged "
                              "from the test's configuration")


@unit_test("hdfs", "TestDirectoryScanner.testScanIntervalInternals",
           observability="private", tags=("internals",))
def test_directory_scanner_interval_internal(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        expected = conf.get_int("dfs.datanode.directoryscan.interval")
        for datanode in cluster.datanodes:
            if datanode._directoryscan_interval != expected:
                raise TestFailure("directory scanner internals diverged "
                                  "from the test's configuration")


@unit_test("hdfs", "TestDataXceiver.testDirectTransferAdmission",
           realistic=False, tags=("internals",),
           notes="§7.1 FP: the test drives a DataNode-private admission "
                 "check with a workload sized from the *client's* conf — "
                 "impossible through any real RPC.")
def test_direct_transfer_admission(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        workload = min(conf.get_int("dfs.datanode.max.transfer.threads"), 64)
        # Directly invoking the DataNode's private admission check — a
        # client could never do this across process boundaries.
        cluster.datanodes[0]._admit_transfers(workload)


@unit_test("hdfs", "TestDFSUtil.testSplitPath", tags=("util",))
def test_split_path(ctx: TestContext) -> None:
    """Pure function test: starts no nodes, so the pre-run filters it."""
    if split_path("/a/b/c") != ["a", "b", "c"]:
        raise TestFailure("split_path broke")
    if split_path("/") != []:
        raise TestFailure("root path should have no components")


@unit_test("hdfs", "TestDataChecksum.testChunkedCrcs", tags=("util",))
def test_chunked_crcs(ctx: TestContext) -> None:
    """Another node-free test exercising the checksum helper directly."""
    data = bytes(range(256)) * 4
    if len(compute_checksums(data, 256, "CRC32")) != 4:
        raise TestFailure("wrong chunk count")
    if compute_checksums(data, 256, "CRC32") == \
            compute_checksums(data, 256, "CRC32C"):
        raise TestFailure("CRC32 and CRC32C should differ")


@unit_test("hdfs", "TestHdfsAdmin.testLateConfigurationObject",
           tags=("internals",),
           notes="Creates a conf object after nodes exist; ConfAgent maps "
                 "it nowhere, so its parameters are excluded (§6.2 Obs. 3).")
def test_late_configuration_object(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        # An admin utility building its own Configuration mid-test: no
        # node is initializing and nodes already exist, so the object is
        # unmappable (uncertain).
        admin_conf = HdfsConfiguration()
        if admin_conf.get_int("dfs.blocksize") != conf.get_int("dfs.blocksize"):
            raise TestFailure("admin tool sees a different block size")
        if admin_conf.get_int("dfs.namenode.handler.count") != \
                conf.get_int("dfs.namenode.handler.count"):
            raise TestFailure("admin tool sees a different handler count")
        cluster.check_health()
