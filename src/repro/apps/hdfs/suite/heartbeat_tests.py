"""HDFS corpus: heartbeats, liveness/staleness reporting, space stats,
and incremental block reports.

The tests here compute their expectations from *their own* configuration
object (as real HDFS unit tests do), which is exactly what exposes the
user-visible-inconsistency family of Table-3 parameters when the serving
node is configured differently.
"""

from __future__ import annotations

from repro.apps.hdfs import DFSClient, HdfsConfiguration, MiniDFSCluster
from repro.apps.hdfs.datanode import DEFAULT_CAPACITY
from repro.common.errors import TestFailure
from repro.core.registry import TestContext, unit_test


def _expiry_seconds(conf) -> float:
    """The heartbeat-expiry formula, computed from the *test's* conf."""
    recheck_ms = conf.get_int("dfs.namenode.heartbeat.recheck-interval")
    interval_s = conf.get_int("dfs.heartbeat.interval")
    return (2 * recheck_ms + 10 * 1000 * interval_s) / 1000.0


@unit_test("hdfs", "TestHeartbeat.testDatanodesStayAlive",
           tags=("heartbeat",))
def test_datanodes_stay_alive(ctx: TestContext) -> None:
    """A healthy cluster must not declare live DataNodes dead (Table 3:
    dfs.heartbeat.interval — a slow sender misses the receiver's window)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        cluster.run_for(1000.0)
        stats = DFSClient(conf, cluster).get_stats()
        if stats["dead"] != 0:
            raise TestFailure("NameNode falsely identified %d live "
                              "DataNode(s) as crashed" % stats["dead"])
        if stats["live"] != 2:
            raise TestFailure("expected 2 live DataNodes, got %d"
                              % stats["live"])


@unit_test("hdfs", "TestDeadDatanode.testStoppedDatanodeReported",
           tags=("heartbeat", "inconsistency"))
def test_dead_node_detection(ctx: TestContext) -> None:
    """Stop a DataNode and wait the expiry the *test's* configuration
    implies; the NameNode sweeps with its own values (Table 3:
    dfs.namenode.heartbeat.recheck-interval)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        cluster.datanodes[1].stop()
        recheck_s = conf.get_int("dfs.namenode.heartbeat.recheck-interval") / 1000.0
        cluster.run_for(_expiry_seconds(conf) + recheck_s + 10.0)
        stats = DFSClient(conf, cluster).get_stats()
        if stats["dead"] != 1:
            raise TestFailure(
                "user expected exactly 1 dead DataNode after the configured "
                "expiry, NameNode reports %d" % stats["dead"])


@unit_test("hdfs", "TestStaleDatanode.testStaleDetection",
           tags=("heartbeat", "inconsistency"))
def test_stale_detection(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        cluster.datanodes[1].stop()
        stale_s = conf.get_int("dfs.namenode.stale.datanode.interval") / 1000.0
        cluster.run_for(stale_s + 30.0)
        stats = DFSClient(conf, cluster).get_stats()
        if stats["stale"] < 1:
            raise TestFailure(
                "user expected the silent DataNode to be stale after the "
                "configured interval, NameNode reports %d stale"
                % stats["stale"])


@unit_test("hdfs", "TestNamenodeCapacityReport.testReservedSpace",
           tags=("inconsistency",))
def test_du_reserved(ctx: TestContext) -> None:
    """Remaining space must reflect the reservation the user configured
    (Table 3: dfs.datanode.du.reserved)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        cluster.run_for(10.0)  # let heartbeats report usage
        reserved = conf.get_int("dfs.datanode.du.reserved")
        expected = 2 * max(DEFAULT_CAPACITY - reserved, 0)
        stats = DFSClient(conf, cluster).get_stats()
        if stats["remaining"] != expected:
            raise TestFailure(
                "user computed %d bytes remaining from the configured "
                "reservation, NameNode reports %d"
                % (expected, stats["remaining"]))


@unit_test("hdfs", "TestIncrementalBlockReports.testDeleteVisibility",
           tags=("inconsistency",))
def test_incremental_block_report(ctx: TestContext) -> None:
    """Delete a file and check when the NameNode's block map shrinks —
    immediately when reports are immediate, after the batching interval
    otherwise (Table 3: dfs.blockreport.incremental.intervalMsec)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.write_file("/ibr/file", b"to-delete" * 32, replication=2)
        if client.get_stats()["blocks"] != 1:
            raise TestFailure("expected 1 block before deletion")
        client.delete("/ibr/file")
        interval_ms = conf.get_int("dfs.blockreport.incremental.intervalMsec")
        blocks_now = client.get_stats()["blocks"]
        if interval_ms == 0:
            if blocks_now != 0:
                raise TestFailure(
                    "deletion was configured to report immediately but the "
                    "NameNode still counts %d block(s)" % blocks_now)
        else:
            if blocks_now != 1:
                raise TestFailure(
                    "deletion was configured to batch for %dms but the "
                    "block disappeared immediately" % interval_ms)
            cluster.run_for(interval_ms / 1000.0 + 1.0)
            remaining = client.get_stats()["blocks"]
            if remaining != 0:
                raise TestFailure("block still present %dms after deletion"
                                  % (interval_ms + 1000))
        cluster.check_health()
