"""HDFS corpus: Balancer and Mover scenarios — the paper's case studies."""

from __future__ import annotations

from repro.apps.hdfs import (Balancer, HdfsConfiguration, MiniDFSCluster,
                             Mover)
from repro.common.errors import TestFailure
from repro.core.registry import TestContext, unit_test


@unit_test("hdfs", "TestBalancer.testConcurrentMoves",
           tags=("balancer",),
           notes="§7.1 case study: dfs.datanode.balance.max.concurrent.moves")
def test_balancer_concurrent_moves(ctx: TestContext) -> None:
    """Move 100 blocks off one DataNode within a deadline.  A Balancer
    dispatching more concurrent moves than the DataNode serves triggers
    the 1100 ms congestion back-off on every declined request, slowing
    balancing ~10x past the deadline."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        moves = []
        for index in range(100):
            block_id = cluster.place_block("/balance/f%03d" % index, ["dn0"])
            moves.append({"block_id": block_id, "source": "dn0",
                          "target": "dn1"})
        balancer = Balancer(conf, cluster)
        result = balancer.run_balancing(moves, timeout_s=100.0)
        if result["moves"] != len(moves):
            raise TestFailure("balancer finished with %d/%d moves"
                              % (result["moves"], len(moves)))
        cluster.check_health()


@unit_test("hdfs", "TestBalancerBandwidth.testThrottledTransferProgress",
           tags=("balancer",),
           notes="§7.1 case study: dfs.datanode.balance.bandwidthPerSec")
def test_balancer_bandwidth(ctx: TestContext) -> None:
    """Stream 50 MB of balancing traffic between two DataNodes.  A fast
    sender drives a slow receiver's bandwidth quota into deficit, and the
    receiver's progress reports stall until the Balancer times out."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        cluster.place_block("/bw/blob", ["dn0"], size=50 * 1024 * 1024)
        balancer = Balancer(conf, cluster)
        result = balancer.run_throttled_transfer(
            "dn0", "dn1", block_bytes=50 * 1024 * 1024,
            progress_timeout_s=3.0)
        if result["chunks"] <= 0:
            raise TestFailure("no data transferred")
        cluster.check_health()


@unit_test("hdfs", "TestUpgradeDomainBlockPlacement.testBalancerHonorsPolicy",
           tags=("balancer",),
           notes="§7.1 case study: dfs.namenode.upgrade.domain.factor")
def test_upgrade_domain_balancing(ctx: TestContext) -> None:
    """The Balancer plans a move that satisfies *its* upgrade-domain
    factor; the NameNode validates with its own and declines forever when
    the Balancer's factor is laxer, so rebalancing never finishes."""
    conf = HdfsConfiguration()
    domains = ["ud0", "ud1", "ud2", "ud0", "ud3"]
    with MiniDFSCluster(conf, num_datanodes=5,
                        upgrade_domains=domains) as cluster:
        cluster.start()
        block_id = cluster.place_block("/ud/blob", ["dn0", "dn1", "dn2"])
        balancer = Balancer(conf, cluster)
        domain_map = balancer.rpc_client.call(cluster.namenode.rpc,
                                              "get_upgrade_domains")
        target = balancer.pick_target(["dn0", "dn1", "dn2"], source_dn="dn2",
                                      candidates=["dn3", "dn4"],
                                      domains=domain_map)
        result = balancer.run_balancing(
            [{"block_id": block_id, "source": "dn2", "target": target}],
            timeout_s=30.0)
        if result["moves"] != 1:
            raise TestFailure("rebalancing did not complete")
        cluster.check_health()


@unit_test("hdfs", "TestMover.testScheduledMoves", tags=("balancer",))
def test_mover_moves_blocks(ctx: TestContext) -> None:
    """The Mover shares the Balancer's dispatch machinery; a small batch
    always finishes inside a generous deadline."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        moves = []
        for index in range(10):
            block_id = cluster.place_block("/mover/f%02d" % index, ["dn0"])
            moves.append({"block_id": block_id, "source": "dn0",
                          "target": "dn1"})
        mover = Mover(conf, cluster)
        result = mover.run_balancing(moves, timeout_s=60.0)
        if result["moves"] != 10:
            raise TestFailure("mover finished with %d/10 moves"
                              % result["moves"])
        cluster.check_health()
