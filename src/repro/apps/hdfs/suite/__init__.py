"""The HDFS whole-system unit-test corpus ZebraConf reuses.

Importing this package registers every test into
:data:`repro.core.registry.CORPUS` under the ``"hdfs"`` app, mirroring
how the paper points ZebraConf at HDFS's existing JUnit suites.
"""

import repro.apps.hdfs.suite.storage_tests  # noqa: F401
import repro.apps.hdfs.suite.heartbeat_tests  # noqa: F401
import repro.apps.hdfs.suite.namespace_tests  # noqa: F401
import repro.apps.hdfs.suite.balancer_tests  # noqa: F401
import repro.apps.hdfs.suite.ha_tests  # noqa: F401
import repro.apps.hdfs.suite.internals_tests  # noqa: F401
import repro.apps.hdfs.suite.misc_tests  # noqa: F401
