"""HDFS corpus: write/read paths, data-transfer security, pipeline recovery.

These tests exercise the checksum, SASL, token, and encryption machinery
on the client<->DataNode and DataNode<->DataNode paths — the wire-format
family of Table-3 parameters.
"""

from __future__ import annotations

from repro.apps.hdfs import DFSClient, HdfsConfiguration, MiniDFSCluster
from repro.common.errors import TestFailure
from repro.common.rngblock import randrange_block
from repro.core.registry import TestContext, unit_test


@unit_test("hdfs", "TestFileCreation.testWriteReadRoundTrip",
           tags=("storage",))
def test_write_read_round_trip(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        payload = bytes(randrange_block(ctx.rng, 256, 2048))
        client.write_file("/user/test/roundtrip", payload, replication=1)
        read_back = client.read_file("/user/test/roundtrip")
        if read_back != payload:
            raise TestFailure("read-back bytes differ from written bytes")
        cluster.check_health()


@unit_test("hdfs", "TestDataTransferProtocol.testPipelineReplication",
           tags=("storage",))
def test_pipeline_replication(ctx: TestContext) -> None:
    """Write with replication 2 so the block is forwarded DataNode to
    DataNode — the hop where peer DataNodes with different checksum or
    encryption settings disagree."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        payload = b"replicated-block-" * 64
        block_ids = client.write_file("/user/test/replicated", payload,
                                      replication=2)
        stats = client.get_stats()
        if stats["blocks"] != len(block_ids):
            raise TestFailure("expected %d blocks, NameNode reports %d"
                              % (len(block_ids), stats["blocks"]))
        for block in client.rpc.call(cluster.namenode.rpc,
                                     "get_block_locations",
                                     "/user/test/replicated"):
            if len(block["locations"]) != 2:
                raise TestFailure("block %d has %d replicas, expected 2"
                                  % (block["block_id"], len(block["locations"])))
        cluster.check_health()


@unit_test("hdfs", "TestBlockTokens.testClusterStartsWithTokens",
           tags=("security",))
def test_block_tokens(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()  # DataNode registration installs block keys
        client = DFSClient(conf, cluster)
        client.write_file("/tokens/file", b"tokenized" * 32, replication=1)
        client.read_file("/tokens/file")
        cluster.check_health()


@unit_test("hdfs", "TestEncryptedTransfer.testEncryptedWriteRead",
           tags=("security",))
def test_encrypted_transfer(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        payload = bytes(randrange_block(ctx.rng, 256, 4096))
        client.write_file("/secure/data", payload, replication=2)
        if client.read_file("/secure/data") != payload:
            raise TestFailure("decrypted read-back differs")
        cluster.check_health()


@unit_test("hdfs", "TestEncryptedTransfer.testKeyRollDuringOperation",
           tags=("security",))
def test_encryption_key_roll(ctx: TestContext) -> None:
    """The NameNode rolls the data encryption key mid-test; heartbeats
    deliver the fresh key to DataNodes, so writes under the new key keep
    working (homogeneous encryption must survive key rolls)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.write_file("/roll/before", b"pre-roll" * 16, replication=1)
        cluster.namenode.encryption_manager.roll()
        cluster.run_for(10.0)  # heartbeats distribute the new key
        payload = b"post-roll" * 16
        client.write_file("/roll/after", payload, replication=2)
        if client.read_file("/roll/after") != payload:
            raise TestFailure("data corrupted across a key roll")
        cluster.check_health()


@unit_test("hdfs", "TestReplaceDatanodeOnFailure.testPipelineRecovery",
           tags=("storage",))
def test_pipeline_recovery(ctx: TestContext) -> None:
    """Inject a DataNode failure during the write pipeline; recovery asks
    the NameNode for a replacement (Table 3:
    dfs.client.block.write.replace-datanode-on-failure.enable)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=3) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        payload = b"pipeline-recovery" * 32
        client.write_file("/recovery/file", payload, replication=2,
                          fail_pipeline_at=0)
        if client.read_file("/recovery/file") != payload:
            raise TestFailure("data lost during pipeline recovery")
        cluster.check_health()


@unit_test("hdfs", "TestDistributedFileSystem.testClientRead",
           tags=("storage", "timeout"))
def test_client_read_pacing(ctx: TestContext) -> None:
    """Plain read; the DataNode paces its stream per its own socket
    timeout while the client enforces its own deadline (Table 3:
    dfs.client.socket-timeout)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.write_file("/read/pacing", b"paced" * 200, replication=1)
        client.read_file("/read/pacing")
        cluster.check_health()


@unit_test("hdfs", "TestLeaseRecovery.testRacyLeaseRecovery", flaky=True,
           tags=("storage", "flaky"),
           notes="Nondeterministic: the recovery race is lost ~25% of trials.")
def test_racy_lease_recovery(ctx: TestContext) -> None:
    """A deliberately flaky test: lease recovery races block finalization
    and loses in a fraction of trials regardless of configuration.  This
    feeds the §5/§7.2 hypothesis-testing machinery."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.write_file("/lease/file", b"leased" * 50, replication=1)
        if ctx.maybe(0.25):
            raise TestFailure("lease recovery raced block finalization "
                              "and lost (timing-dependent)")
        client.read_file("/lease/file")
        cluster.check_health()
