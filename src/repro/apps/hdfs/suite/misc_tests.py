"""HDFS corpus: additional whole-system scenarios (shell ops, reports,
checkpoints, fsck on unhealthy clusters, multi-source balancing)."""

from __future__ import annotations

from repro.apps.hdfs import (Balancer, DFSClient, HdfsConfiguration,
                             MiniDFSCluster, run_fsck)
from repro.apps.hdfs.namespace import Namespace
from repro.common.errors import NodeStateError, ReproError, TestFailure
from repro.core.registry import TestContext, unit_test


@unit_test("hdfs", "TestDFSShell.testMkdirMoveDelete", tags=("shell",))
def test_shell_mkdir_delete(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.mkdirs("/shell/a/b")
        client.write_file("/shell/a/b/file", b"shell-data" * 8,
                          replication=1)
        deleted = client.delete("/shell/a")
        if deleted != 1:
            raise TestFailure("expected to delete 1 block, deleted %d"
                              % deleted)
        if client.get_stats()["blocks"] != 0:
            raise TestFailure("blocks survived a recursive delete")
        cluster.check_health()


@unit_test("hdfs", "TestTrash.testShellRemoveHonorsInterval",
           tags=("shell",))
def test_shell_remove_honors_trash(ctx: TestContext) -> None:
    """``-rm`` behaviour follows the *client's* fs.trash.interval: with
    trash enabled the data moves aside and blocks survive; without it
    the blocks go away.  (Trash is purely client-side, so this is safe
    under any heterogeneous assignment.)"""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.write_file("/trash/file", b"keep-or-toss" * 8, replication=1)
        outcome = client.shell_remove("/trash/file")
        if conf.get_int("fs.trash.interval") > 0:
            if client.get_stats()["blocks"] != 1:
                raise TestFailure("trash-enabled remove dropped the blocks")
            if client.read_file(outcome) != b"keep-or-toss" * 8:
                raise TestFailure("trashed file unreadable at %s" % outcome)
        else:
            if client.get_stats()["blocks"] != 0:
                raise TestFailure("remove left blocks behind")
        cluster.check_health()


@unit_test("hdfs", "TestDatanodeReport.testLiveNodeCount",
           tags=("heartbeat",))
def test_live_node_count(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=3) as cluster:
        cluster.start()
        cluster.run_for(50.0)
        stats = DFSClient(conf, cluster).get_stats()
        if stats["live"] != 3:
            raise TestFailure("expected 3 live DataNodes, NameNode reports %d"
                              % stats["live"])


@unit_test("hdfs", "TestMissingBlocks.testReadWithoutReplicas",
           tags=("storage",))
def test_read_without_replicas(ctx: TestContext) -> None:
    """Stopping the only replica holder must fail the read — with *some*
    application error, whatever the configuration."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.write_file("/missing/file", b"soon-gone" * 8, replication=1)
        cluster.datanodes[0].stop()
        try:
            client.read_file("/missing/file")
        except ReproError:
            pass
        else:
            raise TestFailure("read succeeded with no live replica")


@unit_test("hdfs", "TestStandbyIsUpToDate.testTailAfterFinalize",
           tags=("ha",))
def test_standby_up_to_date(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1, num_namenodes=2,
                        with_journal=True) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        for index in range(5):
            client.mkdirs("/uptodate/d%d" % index)
        cluster.namenode.finalize_log_segment()
        cluster.standby_namenode.tail_edits()
        for index in range(5):
            if not cluster.standby_namenode.namespace.exists(
                    "/uptodate/d%d" % index):
                raise TestFailure("standby missed finalized directory %d"
                                  % index)
        cluster.check_health()


@unit_test("hdfs", "TestSecondaryNameNode.testRepeatedCheckpoints",
           tags=("ha",))
def test_repeated_checkpoints(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1, with_secondary=True) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.mkdirs("/ckpt/first")
        first = cluster.secondary.do_checkpoint()
        client.mkdirs("/ckpt/second")
        second = cluster.secondary.do_checkpoint()
        if Namespace.image_contents(first) == Namespace.image_contents(second):
            raise TestFailure("checkpoints identical despite new directory")
        if len(cluster.secondary.checkpoints) != 2:
            raise TestFailure("secondary retained %d checkpoints"
                              % len(cluster.secondary.checkpoints))
        cluster.check_health()


@unit_test("hdfs", "TestFsck.testReportsCorruption", tags=("web",))
def test_fsck_reports_corruption(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        block_ids = client.write_file("/fsck/bad", b"c" * 128, replication=1)
        client.report_bad_blocks(block_ids)
        report = run_fsck(conf, cluster.namenode)
        if report["healthy"]:
            raise TestFailure("fsck called a cluster with corrupt blocks "
                              "healthy")
        if report["corrupt_blocks"] != 1:
            raise TestFailure("fsck counted %d corrupt blocks, expected 1"
                              % report["corrupt_blocks"])
        cluster.check_health()


@unit_test("hdfs", "TestWebHDFS.testRestFileOperations", tags=("web",))
def test_webhdfs_operations(ctx: TestContext) -> None:
    """Drive the NameNode's REST API; the client's scheme comes from its
    own dfs.http.policy (Table 3, same mechanism as DFSck)."""
    from repro.apps.hdfs.webhdfs import WebHdfsClient
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        web = WebHdfsClient(conf, cluster.namenode)
        if not web.mkdirs("/web/data"):
            raise TestFailure("MKDIRS returned false")
        if not web.exists("/web/data"):
            raise TestFailure("GETFILESTATUS missed a created directory")
        if web.exists("/web/missing"):
            raise TestFailure("GETFILESTATUS invented a path")
        if "data" not in web.list_status("/web"):
            raise TestFailure("LISTSTATUS missed a child")
        cluster.check_health()


@unit_test("hdfs", "TestBalancer.testMultiSourceMoves", tags=("balancer",))
def test_multi_source_balancing(ctx: TestContext) -> None:
    """Moves drawn from two source DataNodes; finishes well inside the
    deadline under any homogeneous setting."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=3) as cluster:
        cluster.start()
        moves = []
        for index in range(20):
            source = "dn%d" % (index % 2)
            block_id = cluster.place_block("/multi/f%02d" % index, [source])
            moves.append({"block_id": block_id, "source": source,
                          "target": "dn2"})
        balancer = Balancer(conf, cluster)
        result = balancer.run_balancing(moves, timeout_s=120.0)
        if result["moves"] != 20:
            raise TestFailure("balancer completed %d/20 moves"
                              % result["moves"])
        cluster.check_health()
