"""HDFS corpus: fs limits, snapshots, web endpoints, corrupt-block listing."""

from __future__ import annotations

from repro.apps.hdfs import (DFSClient, HdfsConfiguration, MiniDFSCluster,
                             run_fsck)
from repro.common.errors import TestFailure
from repro.core.registry import TestContext, unit_test


@unit_test("hdfs", "TestFsLimits.testMaxComponentLength",
           tags=("limits",))
def test_max_component_length(ctx: TestContext) -> None:
    """Create a path whose component length is valid under the *client's*
    limit; the NameNode enforces its own (Table 3:
    dfs.namenode.fs-limits.max-component-length)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        limit = conf.get_int("dfs.namenode.fs-limits.max-component-length")
        name = "d" * min(limit, 100)
        client.mkdirs("/limits/" + name)
        cluster.check_health()


@unit_test("hdfs", "TestFsLimits.testMaxDirectoryItems",
           tags=("limits",))
def test_max_directory_items(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.mkdirs("/fanout")
        count = min(conf.get_int("dfs.namenode.fs-limits.max-directory-items"),
                    32)
        for index in range(count - 1):  # /fanout itself holds the children
            client.mkdirs("/fanout/sub%04d" % index)
        cluster.check_health()


@unit_test("hdfs", "TestSnapshotDiffReport.testDescendantDiff",
           tags=("snapshot",))
def test_snapshot_descendant_diff(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.mkdirs("/snaproot/sub")
        client.allow_snapshot("/snaproot")
        client.create_snapshot("/snaproot", "s0")
        client.mkdirs("/snaproot/sub/added")
        diff = client.snapshot_diff("/snaproot", "/snaproot/sub", "s0")
        if not isinstance(diff, list):
            raise TestFailure("snapshot diff did not return a listing")
        cluster.check_health()


@unit_test("hdfs", "TestFsck.testFsckHealthy", tags=("web",))
def test_fsck_healthy(ctx: TestContext) -> None:
    """Run the DFSck tool against the NameNode web UI; the tool picks its
    scheme from its own configuration (Table 3: dfs.http.policy)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.write_file("/fsck/file", b"fsck-data" * 16, replication=2)
        report = run_fsck(conf, cluster.namenode)
        if not report["healthy"]:
            raise TestFailure("fsck reported an unhealthy cluster: %r" % report)
        cluster.check_health()


@unit_test("hdfs", "TestListCorruptFileBlocks.testTruncatedListing",
           tags=("inconsistency",))
def test_corrupt_block_listing(ctx: TestContext) -> None:
    """Report five corrupt blocks, then list them: the user expects the cap
    from their own configuration (Table 3:
    dfs.namenode.max-corrupt-file-blocks-returned)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        block_ids = []
        for index in range(5):
            block_ids.extend(client.write_file("/corrupt/f%d" % index,
                                               b"x" * 64, replication=1))
        client.report_bad_blocks(block_ids)
        expected = min(5, conf.get_int(
            "dfs.namenode.max-corrupt-file-blocks-returned"))
        listed = client.list_corrupt_file_blocks()
        if len(listed) != expected:
            raise TestFailure(
                "user expected %d corrupt blocks in the listing (their "
                "configured cap), NameNode returned %d"
                % (expected, len(listed)))
        cluster.check_health()
