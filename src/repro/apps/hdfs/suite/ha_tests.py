"""HDFS corpus: HA edit-log tailing, fsimage comparison, checkpoints."""

from __future__ import annotations

from repro.apps.hdfs import DFSClient, HdfsConfiguration, MiniDFSCluster
from repro.apps.hdfs.namespace import Namespace
from repro.common.errors import TestFailure
from repro.core.registry import TestContext, unit_test


@unit_test("hdfs", "TestEditLogTailer.testStandbyTailsEdits",
           tags=("ha",))
def test_standby_tails_edits(ctx: TestContext) -> None:
    """The standby NameNode tails edits from the JournalNode, requesting
    in-progress segments per *its own* configuration; the JournalNode
    serves them per its own (Table 3: dfs.ha.tail-edits.in-progress)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1, num_namenodes=2,
                        with_journal=True) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        for index in range(3):
            client.mkdirs("/ha/finalized%d" % index)
        cluster.namenode.finalize_log_segment()
        client.mkdirs("/ha/inprogress0")
        standby = cluster.standby_namenode
        standby.tail_edits()
        expect_in_progress = conf.get_bool("dfs.ha.tail-edits.in-progress")
        if not standby.namespace.exists("/ha/finalized2"):
            raise TestFailure("standby missed finalized edits")
        has_in_progress = standby.namespace.exists("/ha/inprogress0")
        if has_in_progress != expect_in_progress:
            raise TestFailure(
                "standby %s the in-progress edit although the user "
                "configured tail-edits.in-progress=%s"
                % ("applied" if has_in_progress else "missed",
                   expect_in_progress))
        cluster.check_health()


@unit_test("hdfs", "TestStandbyCheckpoints.testImageFilesIdentical",
           strict_assertion=True, tags=("ha",),
           notes="§7.1 FP: compares fsimage *lengths* before contents; "
                 "compression changes length but not contents.")
def test_image_files_identical(ctx: TestContext) -> None:
    """Both NameNodes save an fsimage of the same namespace.  The test
    first compares file lengths — the overly strict assertion the paper
    calls out for dfs.image.compress — and only then the actual contents."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1, num_namenodes=2,
                        with_journal=True) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        for index in range(4):
            client.mkdirs("/images/dir%d" % index)
        cluster.namenode.finalize_log_segment()
        standby = cluster.standby_namenode
        standby.tail_edits()
        image_active = cluster.namenode.save_image()
        image_standby = standby.save_image()
        if len(image_active) != len(image_standby):
            raise TestFailure(
                "fsimage lengths differ: active=%d standby=%d"
                % (len(image_active), len(image_standby)))
        if (Namespace.image_contents(image_active)
                != Namespace.image_contents(image_standby)):
            raise TestFailure("fsimage contents differ between NameNodes")
        cluster.check_health()


@unit_test("hdfs", "TestSecondaryNameNode.testCheckpointMatchesActive",
           tags=("ha",))
def test_secondary_checkpoint(ctx: TestContext) -> None:
    """Checkpoint via the SecondaryNameNode and compare *contents* (the
    lenient version of the image comparison — passes under heterogeneous
    compression, unlike its strict sibling)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1, with_secondary=True) as cluster:
        cluster.start()
        client = DFSClient(conf, cluster)
        client.mkdirs("/checkpoint/data")
        image = cluster.secondary.do_checkpoint()
        live = cluster.namenode.namespace.save_image(compress=False)
        if (Namespace.image_contents(image)
                != Namespace.image_contents(live)):
            raise TestFailure("checkpoint diverged from the live namespace")
        cluster.check_health()
