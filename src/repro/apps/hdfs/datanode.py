"""The DataNode: block storage, heartbeats, data transfer, balancing ops.

Reads every parameter through its own configuration object, so a
heterogeneously-configured DataNode genuinely disagrees with its peers
about checksums, encryption, SASL protection, heartbeat cadence, reserved
space, incremental-report batching, balancing bandwidth, and concurrent
move limits — the DataNode-side Table-3 behaviours.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.apps.hdfs.datatransfer import open_envelope, seal_envelope
from repro.common.errors import NodeStateError, SocketTimeout
from repro.common.ipc import RpcClient
from repro.common.network import BandwidthThrottler
from repro.common.node import Node, node_init, register_node_type
from repro.common.security import (BlockToken, BlockTokenVerifier,
                                   DataEncryptionKey, DataEncryptionKeyStore)
from repro.common.simulation import PeriodicTask
from repro.common.wire import negotiate_sasl, verify_checksums

register_node_type("hdfs", "DataNode")

#: default raw capacity per simulated DataNode volume.
DEFAULT_CAPACITY = 100 * 1024 ** 3


class DataNode(Node):
    node_type = "DataNode"

    def __init__(self, conf: Any, cluster: Any, dn_id: str,
                 capacity: int = DEFAULT_CAPACITY,
                 upgrade_domain: str = "ud-default") -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.dn_id = dn_id
            self.capacity = capacity
            self.upgrade_domain = upgrade_domain

            self.token_verifier = BlockTokenVerifier(
                self.conf.get_bool("dfs.block.access.token.enable"))
            self.key_store = DataEncryptionKeyStore(
                self.conf.get_bool("dfs.encrypt.data.transfer"))
            from repro.apps.hdfs.conf import HdfsConfiguration
            self.rpc_client = RpcClient(
                self.conf, ipc=cluster.ensure_ipc(HdfsConfiguration))

            #: blocks stored locally: block_id -> {"data": bytes, "checksums": [...]}.
            self.storage: Dict[int, Dict[str, Any]] = {}
            self.used = 0

            # balancing machinery
            self.balance_throttler = BandwidthThrottler(
                self.sim, rate_fn=lambda: self.conf.get_int(
                    "dfs.datanode.balance.bandwidthPerSec"))
            self.active_moves = 0
            self.declined_moves = 0
            self._critical_throttler: Optional[BandwidthThrottler] = None

            # batched incremental block reports
            self._pending_deletion_reports: List[int] = []
            self._ibr_flush_scheduled = False

            # plain init-time reads (safe parameters feeding the pools)
            self._handler_count = self.conf.get_int("dfs.datanode.handler.count")
            self._data_dir = self.conf.get_str("dfs.datanode.data.dir")
            self._sync_behind_writes = self.conf.get_bool(
                "dfs.datanode.sync.behind.writes")
            self._drop_cache_behind_reads = self.conf.get_bool(
                "dfs.datanode.drop.cache.behind.reads")
            self._scan_period_hours = self.conf.get_int(
                "dfs.datanode.scan.period.hours")
            # audit fixture: read but inert — nothing consumes this value
            self._metrics_logger_period_s = self.conf.get_int(
                "dfs.datanode.metrics.logger.period.seconds")

            # internals behind false positives
            self._directoryscan_interval = self.conf.get_int(
                "dfs.datanode.directoryscan.interval")
            self._max_transfer_threads = self.conf.get_int(
                "dfs.datanode.max.transfer.threads")

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def namenode(self) -> Any:
        return self.cluster.namenode

    def start(self) -> None:
        super().start()
        response = self.rpc_client.call(
            self.namenode.rpc, "register_datanode",
            self.dn_id, self.capacity, self.upgrade_domain)
        self.token_verifier.install_keys(response["block_keys"])
        key = response["encryption_key"]
        if key is not None:
            self.key_store.install(DataEncryptionKey(
                key["key_id"], bytes.fromhex(key["material"])))
        self.add_periodic(PeriodicTask(
            self.sim,
            interval_fn=lambda: float(self.conf.get_int("dfs.heartbeat.interval")),
            callback=self._send_heartbeat))
        self.add_periodic(PeriodicTask(
            self.sim,
            interval_fn=lambda: self.conf.get_int(
                "dfs.blockreport.intervalMsec") / 1000.0,
            callback=self._send_full_block_report))

    def _reserved(self) -> int:
        return self.conf.get_int("dfs.datanode.du.reserved")

    def remaining(self) -> int:
        return max(self.capacity - self._reserved() - self.used, 0)

    def _send_heartbeat(self) -> None:
        if not self.running:
            return
        response = self.rpc_client.call(self.namenode.rpc, "heartbeat",
                                        self.dn_id, self.remaining())
        key = response.get("encryption_key") if isinstance(response, dict) \
            else None
        if key is not None:
            self.key_store.install(DataEncryptionKey(
                key["key_id"], bytes.fromhex(key["material"])))

    def _send_full_block_report(self) -> None:
        """Periodic full block report: the reconciliation path that lets
        the NameNode learn about replicas it missed."""
        if not self.running:
            return
        self.rpc_client.call(self.namenode.rpc, "full_block_report",
                             self.dn_id, sorted(self.storage))

    # ------------------------------------------------------------------
    # write path (DataTransferProtocol)
    # ------------------------------------------------------------------
    def receive_block(self, request: Dict[str, Any]) -> None:
        """Receive one block from a client or upstream pipeline DataNode.

        The request carries the *sender's* SASL level and encryption
        envelope; everything is checked with *this node's* configuration.
        """
        self.ensure_running()
        negotiate_sasl(request["sender_protection"],
                       self.conf.get_enum("dfs.data.transfer.protection"),
                       what="data transfer")
        token = request.get("token")
        self.token_verifier.verify(
            None if token is None else BlockToken(token["block_id"],
                                                  token["key_id"]),
            request["block_id"])
        payload = open_envelope(request["envelope"],
                                expect_encrypted=self.key_store.enabled,
                                key_lookup=self.key_store.lookup)
        data = bytes.fromhex(payload["data"])
        if getattr(self.cluster, "embed_wire_metadata", False) \
                and "writer_bpc" in payload:
            # §7.3 remediation: trust the parameters embedded with the
            # data instead of this node's configuration file
            verify_checksums(data, payload["checksums"],
                             payload["writer_bpc"],
                             payload["writer_checksum_type"])
        else:
            verify_checksums(data, payload["checksums"],
                             self.conf.get_int("dfs.bytes-per-checksum"),
                             self.conf.get_enum("dfs.checksum.type"))
        self.storage[request["block_id"]] = {
            "data": data, "checksums": list(payload["checksums"]),
            "writer_bpc": payload.get("writer_bpc"),
            "writer_checksum_type": payload.get("writer_checksum_type")}
        self.used += len(data)
        self.rpc_client.call(self.namenode.rpc, "block_received",
                             self.dn_id, request["block_id"])
        pipeline = list(request.get("pipeline", []))
        if pipeline:
            next_dn = self.cluster.datanode(pipeline[0])
            next_dn.receive_block(self._forward_request(request, payload,
                                                        pipeline[1:]))

    def _forward_request(self, request: Dict[str, Any], payload: Dict[str, Any],
                         rest: List[str]) -> Dict[str, Any]:
        """Re-frame the block with *this node's* settings for the next hop."""
        key = self.key_store.current if self.key_store.enabled else None
        return {
            "block_id": request["block_id"],
            "sender_protection": self.conf.get_enum("dfs.data.transfer.protection"),
            "token": request.get("token"),
            "envelope": seal_envelope(payload, None if key is None else {
                "key_id": key.key_id, "material": key.material.hex()}),
            "pipeline": rest,
        }

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def transfer_block(self, block_id: int, client_protection: str,
                       client_timeout_ms: int,
                       token: Optional[Dict[str, Any]]) -> Dict[str, Any]:
        """Serve a block read.

        Pacing model: this DataNode emits stream keepalives every half of
        *its own* ``dfs.client.socket-timeout``; a client whose deadline
        is shorter than that gap times out (Table 3:
        dfs.client.socket-timeout).
        """
        self.ensure_running()
        negotiate_sasl(client_protection,
                       self.conf.get_enum("dfs.data.transfer.protection"),
                       what="data transfer")
        self.token_verifier.verify(
            None if token is None else BlockToken(token["block_id"],
                                                  token["key_id"]),
            block_id)
        pacing_ms = self.conf.get_int("dfs.client.socket-timeout") / 2
        if 0 < client_timeout_ms < pacing_ms:
            raise SocketTimeout(
                "client read deadline %dms elapsed before the DataNode's "
                "%.0fms stream pacing produced bytes"
                % (client_timeout_ms, pacing_ms))
        replica = self.storage.get(block_id)
        if replica is None:
            raise NodeStateError("%s has no replica of block %d"
                                 % (self.dn_id, block_id))
        key = self.key_store.current if self.key_store.enabled else None
        return {
            "envelope": seal_envelope(
                {"data": replica["data"].hex(),
                 "checksums": replica["checksums"],
                 "writer_bpc": replica.get("writer_bpc"),
                 "writer_checksum_type": replica.get("writer_checksum_type")},
                None if key is None else {"key_id": key.key_id,
                                          "material": key.material.hex()}),
        }

    # ------------------------------------------------------------------
    # deletions and incremental block reports
    # ------------------------------------------------------------------
    def schedule_block_deletion(self, block_id: int) -> None:
        replica = self.storage.pop(block_id, None)
        if replica is not None:
            self.used -= len(replica["data"])
        interval_ms = self.conf.get_int("dfs.blockreport.incremental.intervalMsec")
        if interval_ms <= 0:
            self.rpc_client.call(self.namenode.rpc, "incremental_block_report",
                                 self.dn_id, [block_id])
            return
        self._pending_deletion_reports.append(block_id)
        if not self._ibr_flush_scheduled:
            self._ibr_flush_scheduled = True
            self.sim.schedule(interval_ms / 1000.0, self._flush_ibr)

    def _flush_ibr(self) -> None:
        self._ibr_flush_scheduled = False
        if not self.running or not self._pending_deletion_reports:
            return
        batch, self._pending_deletion_reports = self._pending_deletion_reports, []
        self.rpc_client.call(self.namenode.rpc, "incremental_block_report",
                             self.dn_id, batch)

    # ------------------------------------------------------------------
    # balancing support (used by repro.apps.hdfs.balancer)
    # ------------------------------------------------------------------
    def try_acquire_move_slot(self) -> bool:
        """Accept or decline a balancer block-move request (Table 3:
        dfs.datanode.balance.max.concurrent.moves)."""
        self.ensure_running()
        limit = self.conf.get_int("dfs.datanode.balance.max.concurrent.moves")
        if self.active_moves >= limit:
            self.declined_moves += 1
            return False
        self.active_moves += 1
        return True

    def release_move_slot(self) -> None:
        self.active_moves = max(self.active_moves - 1, 0)

    def send_paced(self, nbytes: int) -> Generator:
        """Pace outgoing balancing traffic with this node's bandwidth cap."""
        yield from self.balance_throttler.acquire(nbytes)

    def absorb_burst(self, nbytes: int) -> None:
        """Account for balancing bytes that already arrived on the wire."""
        self.balance_throttler.force_debit(nbytes)

    def send_when_clear(self) -> Generator:
        """Wait until the bandwidth deficit is repaid before transmitting
        (progress reports queue behind the deficit — the bandwidthPerSec
        case study)."""
        yield from self.balance_throttler.wait_until_clear()

    def send_critical(self, nbytes: int, reserve_fraction: float) -> Generator:
        """§7.3 remediation: send critical traffic (progress reports,
        heartbeats) through a reserved slice of the bandwidth cap instead
        of queueing behind the balancing deficit ("each node should
        reserve a small fraction of bandwidth for critical traffic")."""
        if self._critical_throttler is None:
            self._critical_throttler = BandwidthThrottler(
                self.sim, rate_fn=lambda: max(
                    reserve_fraction * self.conf.get_int(
                        "dfs.datanode.balance.bandwidthPerSec"), 1.0))
        yield from self._critical_throttler.acquire(nbytes)

    # ------------------------------------------------------------------
    # private hook used by the unrealistic-test false positive
    # ------------------------------------------------------------------
    def _admit_transfers(self, count: int) -> None:
        if count > self._max_transfer_threads:
            raise NodeStateError(
                "%s: %d transfers exceed dfs.datanode.max.transfer.threads=%d"
                % (self.dn_id, count, self._max_transfer_threads))
