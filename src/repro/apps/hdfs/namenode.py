"""The NameNode: namespace + block manager + heartbeat monitor + web UI.

Every client- and DataNode-facing operation reads configuration through
*this node's* configuration object, so ZebraConf's ConfAgent can give the
NameNode different values than its peers — which is exactly how the
paper's NameNode-side Table-3 failures (fs limits, snapshot policy,
heartbeat expiry, corrupt-block truncation, upgrade domains, token and
encryption-key distribution) reproduce here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.apps.hdfs.blockmanager import BlockManager
from repro.apps.hdfs.namespace import Namespace
from repro.common.errors import RpcError
from repro.common.httpserver import HttpServer
from repro.common.ipc import RpcServer
from repro.common.node import Node, node_init, register_node_type
from repro.common.security import (BlockTokenSecretManager,
                                   DataEncryptionKeyManager)
from repro.common.simulation import PeriodicTask

register_node_type("hdfs", "NameNode")


class DatanodeDescriptor:
    """NameNode-side record of one registered DataNode."""

    def __init__(self, dn_id: str, capacity: int, now: float) -> None:
        self.dn_id = dn_id
        self.capacity = capacity
        self.remaining = capacity
        self.last_heartbeat = now
        self.declared_dead = False


class NameNode(Node):
    node_type = "NameNode"

    def __init__(self, conf: Any, cluster: Any, nn_id: str = "nn0",
                 standby: bool = False) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.nn_id = nn_id
            self.standby = standby

            # security managers use this NameNode's flags
            self.token_manager = BlockTokenSecretManager(
                self.conf.get_bool("dfs.block.access.token.enable"))
            self.encryption_manager = DataEncryptionKeyManager(
                self.conf.get_bool("dfs.encrypt.data.transfer"))

            self.namespace = Namespace(
                max_component_length_fn=lambda: self.conf.get_int(
                    "dfs.namenode.fs-limits.max-component-length"),
                max_directory_items_fn=lambda: self.conf.get_int(
                    "dfs.namenode.fs-limits.max-directory-items"))
            self.block_manager = BlockManager(
                upgrade_domain_factor_fn=lambda: self.conf.get_int(
                    "dfs.namenode.upgrade.domain.factor"),
                max_corrupt_returned_fn=lambda: self.conf.get_int(
                    "dfs.namenode.max-corrupt-file-blocks-returned"))

            self.datanodes: Dict[str, DatanodeDescriptor] = {}
            from repro.apps.hdfs.conf import HdfsConfiguration
            from repro.common.ipc import RpcClient
            self._journal_client = RpcClient(
                self.conf, ipc=cluster.ensure_ipc(HdfsConfiguration))
            self.rpc = RpcServer("NameNode-%s" % nn_id, self.conf)
            self._register_rpc_methods()

            # web endpoint: bind per this node's policy; the address
            # companion comes from the §4 dependency rules.
            policy = self.conf.get_enum("dfs.http.policy")
            if policy == "HTTPS_ONLY":
                self.web_address = self.conf.get_str("dfs.namenode.https-address")
            else:
                self.web_address = self.conf.get_str("dfs.namenode.http-address")
            self.http = HttpServer("NameNode-%s" % nn_id, policy)
            self.http.route("/fsck", self._handle_fsck)
            self.http.route("/jmx", self._handle_jmx)

            # plain init-time reads (safe parameters feeding the pools)
            self._handler_count = self.conf.get_int("dfs.namenode.handler.count")
            self._service_handlers = self.conf.get_int(
                "dfs.namenode.service.handler.count")
            self._name_dir = self.conf.get_str("dfs.namenode.name.dir")
            self._edits_dir = self.conf.get_str("dfs.namenode.edits.dir")
            self._accesstime_precision = self.conf.get_int(
                "dfs.namenode.accesstime.precision")
            self._acls_enabled = self.conf.get_bool("dfs.namenode.acls.enabled")

            # internals behind the private-observability false positives
            self._safemode_threshold = self.conf.get_float(
                "dfs.namenode.safemode.threshold-pct")
            self._replication_work_multiplier = self.conf.get_int(
                "dfs.namenode.replication.work.multiplier.per.iteration")
            self._cache_refresh_interval_ms = self.conf.get_int(
                "dfs.namenode.path.based.cache.refresh.interval.ms")

            # HA plumbing
            self.journal: Optional[Any] = None  # JournalNode, set by cluster
            self._next_txid = 1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        self.add_periodic(PeriodicTask(
            self.sim,
            interval_fn=lambda: self.conf.get_int(
                "dfs.namenode.heartbeat.recheck-interval") / 1000.0,
            callback=self._heartbeat_sweep))

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------
    def _register_rpc_methods(self) -> None:
        rpc = self.rpc
        rpc.register("register_datanode", self.register_datanode)
        rpc.register("heartbeat", self.handle_heartbeat)
        rpc.register("incremental_block_report", self.handle_incremental_report)
        rpc.register("full_block_report", self.handle_full_block_report)
        rpc.register("block_received", self.handle_block_received)
        rpc.register("mkdirs", self.mkdirs)
        rpc.register("list_dir", self.list_dir)
        rpc.register("create_file", self.create_file)
        rpc.register("add_block", self.add_block)
        rpc.register("delete", self.delete)
        rpc.register("rename", self.rename)
        rpc.register("get_block_locations", self.get_block_locations)
        rpc.register("get_additional_datanode", self.get_additional_datanode)
        rpc.register("report_bad_blocks", self.report_bad_blocks)
        rpc.register("list_corrupt_file_blocks", self.list_corrupt_file_blocks)
        rpc.register("get_stats", self.get_stats)
        rpc.register("get_data_encryption_key", self.get_data_encryption_key)
        rpc.register("allow_snapshot", self.allow_snapshot)
        rpc.register("create_snapshot", self.create_snapshot)
        rpc.register("snapshot_diff", self.snapshot_diff)
        rpc.register("validate_move", self.validate_move)
        rpc.register("apply_move", self.apply_move)
        rpc.register("get_upgrade_domains", self.get_upgrade_domains)
        rpc.register("get_upgrade_domain_factor", self.get_upgrade_domain_factor)

    # ------------------------------------------------------------------
    # DataNode lifecycle
    # ------------------------------------------------------------------
    def register_datanode(self, dn_id: str, capacity: int,
                          upgrade_domain: str) -> Dict[str, Any]:
        self.datanodes[dn_id] = DatanodeDescriptor(dn_id, capacity, self.sim.now)
        self.block_manager.set_upgrade_domain(dn_id, upgrade_domain)
        key = self.encryption_manager.current_key()
        return {
            "block_keys": self.token_manager.current_keys(),
            "encryption_key": None if key is None else
                {"key_id": key.key_id, "material": key.material.hex()},
        }

    def handle_heartbeat(self, dn_id: str, remaining: int) -> Dict[str, Any]:
        descriptor = self.datanodes.get(dn_id)
        if descriptor is None:
            raise RpcError("heartbeat from unregistered DataNode %s" % dn_id)
        descriptor.last_heartbeat = self.sim.now
        descriptor.remaining = remaining
        descriptor.declared_dead = False
        # heartbeat responses carry the current data encryption key, so
        # DataNodes keep decrypting after the NameNode rolls it
        key = self.encryption_manager.current_key()
        return {"ack": True,
                "encryption_key": None if key is None else
                    {"key_id": key.key_id, "material": key.material.hex()}}

    def _heartbeat_expiry_s(self) -> float:
        """HDFS's expiry formula, computed from *this node's* values."""
        recheck_ms = self.conf.get_int("dfs.namenode.heartbeat.recheck-interval")
        interval_s = self.conf.get_int("dfs.heartbeat.interval")
        return (2 * recheck_ms + 10 * 1000 * interval_s) / 1000.0

    def _heartbeat_sweep(self) -> None:
        expiry = self._heartbeat_expiry_s()
        for descriptor in self.datanodes.values():
            silence = self.sim.now - descriptor.last_heartbeat
            descriptor.declared_dead = silence > expiry

    def dead_datanodes(self) -> List[str]:
        return sorted(d.dn_id for d in self.datanodes.values() if d.declared_dead)

    def stale_datanodes(self) -> List[str]:
        threshold = self.conf.get_int("dfs.namenode.stale.datanode.interval") / 1000.0
        return sorted(d.dn_id for d in self.datanodes.values()
                      if self.sim.now - d.last_heartbeat > threshold)

    def live_datanodes(self) -> List[str]:
        return sorted(d.dn_id for d in self.datanodes.values()
                      if not d.declared_dead)

    # ------------------------------------------------------------------
    # namespace operations (each logs an edit when HA journaling is on)
    # ------------------------------------------------------------------
    def mkdirs(self, path: str) -> bool:
        self.namespace.mkdirs(path)
        self._log_edit(["mkdirs", path])
        return True

    def list_dir(self, path: str) -> List[str]:
        return sorted(self.namespace.lookup_dir(path).children)

    def create_file(self, path: str, replication: int = 3) -> bool:
        self.namespace.create_file(path, replication=replication)
        self._log_edit(["create", path, replication])
        return True

    def add_block(self, path: str, size: int, pipeline_width: int) -> Dict[str, Any]:
        inode = self.namespace.lookup_file(path)
        live = self.live_datanodes()
        if len(live) < pipeline_width:
            raise RpcError("only %d live DataNodes for a width-%d pipeline"
                           % (len(live), pipeline_width))
        info = self.block_manager.allocate(path, size)
        inode.block_ids.append(info.block_id)
        token = self.token_manager.mint(info.block_id)
        key = self.encryption_manager.current_key()
        return {
            "block_id": info.block_id,
            "pipeline": live[:pipeline_width],
            "token": None if token is None else
                {"block_id": token.block_id, "key_id": token.key_id},
            "encryption_key": None if key is None else
                {"key_id": key.key_id, "material": key.material.hex()},
        }

    def handle_block_received(self, dn_id: str, block_id: int) -> bool:
        self.block_manager.add_replica(block_id, dn_id)
        return True

    def delete(self, path: str) -> int:
        """Delete a path; replicas are removed from DataNodes asynchronously
        and leave the block map when incremental reports arrive."""
        block_ids = self.namespace.delete(path)
        self._log_edit(["delete", path])
        for block_id in block_ids:
            info = self.block_manager.blocks.get(block_id)
            if info is None:
                continue
            for dn_id in sorted(info.locations):
                self.block_manager.begin_deletion(block_id, dn_id)
                datanode = self.cluster.datanode(dn_id)
                if datanode is not None and datanode.running:
                    datanode.schedule_block_deletion(block_id)
        return len(block_ids)

    def rename(self, src: str, dst: str) -> bool:
        self.namespace.rename(src, dst)
        self._log_edit(["rename", src, dst])
        return True

    def handle_incremental_report(self, dn_id: str,
                                  deleted_block_ids: List[int]) -> bool:
        self.block_manager.apply_incremental_report(dn_id, deleted_block_ids)
        return True

    def handle_full_block_report(self, dn_id: str,
                                 block_ids: List[int]) -> int:
        """Reconcile a full report: register replicas the block map is
        missing (removals still arrive via incremental reports, keeping
        dfs.blockreport.incremental.intervalMsec's semantics intact)."""
        added = 0
        for block_id in block_ids:
            info = self.block_manager.blocks.get(block_id)
            if info is not None and dn_id not in info.locations:
                info.locations.add(dn_id)
                added += 1
        return added

    def get_block_locations(self, path: str) -> List[Dict[str, Any]]:
        inode = self.namespace.lookup_file(path)
        out = []
        for block_id in inode.block_ids:
            info = self.block_manager.blocks.get(block_id)
            locations = sorted(info.locations) if info is not None else []
            token = self.token_manager.mint(block_id)
            out.append({"block_id": block_id, "locations": locations,
                        "token": None if token is None else
                            {"block_id": token.block_id, "key_id": token.key_id}})
        return out

    def get_additional_datanode(self, existing: List[str]) -> str:
        """Pipeline-recovery replacement (Table 3:
        dfs.client.block.write.replace-datanode-on-failure.enable)."""
        if not self.conf.get_bool(
                "dfs.client.block.write.replace-datanode-on-failure.enable"):
            raise RpcError(
                "replace-datanode-on-failure is disabled on the NameNode; "
                "refusing to find an additional DataNode")
        for dn_id in self.live_datanodes():
            if dn_id not in existing:
                return dn_id
        raise RpcError("no spare DataNode available")

    # ------------------------------------------------------------------
    # corrupt blocks and stats
    # ------------------------------------------------------------------
    def report_bad_blocks(self, block_ids: List[int]) -> bool:
        self.block_manager.report_bad_blocks(block_ids)
        return True

    def list_corrupt_file_blocks(self) -> List[int]:
        return self.block_manager.list_corrupt_file_blocks()

    def get_stats(self) -> Dict[str, Any]:
        live = [d for d in self.datanodes.values() if not d.declared_dead]
        return {
            "capacity": sum(d.capacity for d in live),
            "remaining": sum(d.remaining for d in live),
            "live": len(live),
            "dead": len(self.dead_datanodes()),
            "stale": len(self.stale_datanodes()),
            "blocks": self.block_manager.live_block_count(),
        }

    def get_data_encryption_key(self) -> Optional[Dict[str, Any]]:
        key = self.encryption_manager.current_key()
        if key is None:
            return None
        return {"key_id": key.key_id, "material": key.material.hex()}

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def allow_snapshot(self, path: str) -> bool:
        self.namespace.allow_snapshot(path)
        return True

    def create_snapshot(self, path: str, name: str) -> bool:
        self.namespace.create_snapshot(path, name)
        return True

    def snapshot_diff(self, snapshot_root: str, scope_path: str,
                      from_snapshot: str) -> List[str]:
        return self.namespace.snapshot_diff(
            snapshot_root, scope_path, from_snapshot,
            allow_descendant_fn=lambda: self.conf.get_bool(
                "dfs.namenode.snapshotdiff.allow.snap-root-descendant"))

    # ------------------------------------------------------------------
    # balancer support
    # ------------------------------------------------------------------
    def validate_move(self, block_id: int, source_dn: str, target_dn: str) -> bool:
        self.block_manager.validate_move(block_id, source_dn, target_dn)
        return True

    def apply_move(self, block_id: int, source_dn: str, target_dn: str) -> bool:
        self.block_manager.apply_move(block_id, source_dn, target_dn)
        return True

    def get_upgrade_domains(self) -> Dict[str, str]:
        return dict(self.block_manager.upgrade_domains)

    def get_upgrade_domain_factor(self) -> int:
        """§7.3 remediation: let the Balancer *fetch* the domain factor
        from the NameNode instead of reading its own configuration file
        ("A possible solution ... is to let Balancer fetch the value of
        the domain factor from the corresponding NameNode")."""
        return self.conf.get_int("dfs.namenode.upgrade.domain.factor")

    # ------------------------------------------------------------------
    # HA: edit journaling and standby tailing
    # ------------------------------------------------------------------
    def _log_edit(self, edit: List[Any]) -> None:
        if self.journal is None or self.standby:
            return
        self.journal.journal(self._next_txid, edit)
        self._next_txid += 1

    def finalize_log_segment(self) -> None:
        if self.journal is not None:
            self.journal.finalize_segment()

    def tail_edits(self) -> int:
        """Standby-side tailing: request edits from the JournalNode with
        *this node's* in-progress setting (Table 3:
        dfs.ha.tail-edits.in-progress)."""
        include_in_progress = self.conf.get_bool("dfs.ha.tail-edits.in-progress")
        edits = self._journal_client.call(
            self.journal.rpc, "get_journaled_edits",
            self._next_txid, include_in_progress)
        for txid, edit in edits:
            self._apply_edit(edit)
            self._next_txid = txid + 1
        return len(edits)

    def _apply_edit(self, edit: List[Any]) -> None:
        op = edit[0]
        if op == "mkdirs":
            self.namespace.mkdirs(edit[1])
        elif op == "create":
            self.namespace.create_file(edit[1], replication=edit[2])
        elif op == "delete":
            self.namespace.delete(edit[1])
        elif op == "rename":
            self.namespace.rename(edit[1], edit[2])
        else:
            raise RpcError("unknown edit op %r" % op)

    # ------------------------------------------------------------------
    # fsimage (dfs.image.compress)
    # ------------------------------------------------------------------
    def save_image(self) -> bytes:
        return self.namespace.save_image(
            compress=self.conf.get_bool("dfs.image.compress"))

    # ------------------------------------------------------------------
    # web handlers
    # ------------------------------------------------------------------
    def _handle_fsck(self) -> Dict[str, Any]:
        return {
            "healthy": not self.block_manager.corrupt and not self.dead_datanodes(),
            "corrupt_blocks": len(self.block_manager.corrupt),
            "dead_datanodes": self.dead_datanodes(),
        }

    def _handle_jmx(self) -> Dict[str, Any]:
        return self.get_stats()
