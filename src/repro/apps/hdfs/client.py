"""DFSClient and the DFSck tool.

A DFSClient is *not* a node: in whole-system unit tests the client role
is played by the unit test itself (§6.1), so the client's configuration
object belongs to the unit test and ZebraConf's UNIT_TEST pseudo-group
controls its values.  Every client-side decision — checksum parameters,
encryption, SASL level, socket timeouts, block size, the http scheme
DFSck uses — is read from the client's own configuration.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.hdfs.datatransfer import open_envelope, seal_envelope
from repro.common.errors import HandshakeError
from repro.common.httpserver import http_get
from repro.common.ipc import RpcClient
from repro.common.wire import compute_checksums, verify_checksums


class DFSClient:
    """Client-side HDFS API used by the corpus unit tests."""

    def __init__(self, conf: Any, cluster: Any) -> None:
        self.conf = conf
        self.cluster = cluster
        self.rpc = RpcClient(conf, ipc=cluster.ipc)

    # ------------------------------------------------------------------
    # namespace
    # ------------------------------------------------------------------
    def _nn(self) -> Any:
        return self.cluster.namenode.rpc

    def mkdirs(self, path: str) -> bool:
        return self.rpc.call(self._nn(), "mkdirs", path)

    def delete(self, path: str) -> int:
        return self.rpc.call(self._nn(), "delete", path)

    def rename(self, src: str, dst: str) -> bool:
        return self.rpc.call(self._nn(), "rename", src, dst)

    def shell_remove(self, path: str, skip_trash: bool = False) -> str:
        """``hdfs dfs -rm``: honours *this client's* ``fs.trash.interval``
        — with trash enabled the path is moved into the user's trash
        directory instead of being deleted (as Hadoop's FsShell does; the
        FileSystem.delete API itself never consults trash)."""
        interval = self.conf.get_int("fs.trash.interval")
        if skip_trash or interval <= 0:
            self.delete(path)
            return "deleted"
        trash_path = "/user/.Trash/Current" + path
        self.rename(path, trash_path)
        return trash_path

    def get_stats(self) -> Dict[str, Any]:
        return self.rpc.call(self._nn(), "get_stats")

    def report_bad_blocks(self, block_ids: List[int]) -> bool:
        return self.rpc.call(self._nn(), "report_bad_blocks", block_ids)

    def list_corrupt_file_blocks(self) -> List[int]:
        return self.rpc.call(self._nn(), "list_corrupt_file_blocks")

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def allow_snapshot(self, path: str) -> bool:
        return self.rpc.call(self._nn(), "allow_snapshot", path)

    def create_snapshot(self, path: str, name: str) -> bool:
        return self.rpc.call(self._nn(), "create_snapshot", path, name)

    def snapshot_diff(self, snapshot_root: str, scope_path: str,
                      from_snapshot: str) -> List[str]:
        """Request a snapshot diff, scoping it the way *this client's*
        configuration says is allowed (Table 3:
        dfs.namenode.snapshotdiff.allow.snap-root-descendant)."""
        if not self.conf.get_bool(
                "dfs.namenode.snapshotdiff.allow.snap-root-descendant"):
            scope_path = snapshot_root
        return self.rpc.call(self._nn(), "snapshot_diff",
                             snapshot_root, scope_path, from_snapshot)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def _encryption_key(self) -> Optional[Dict[str, Any]]:
        """The data encryption key, if this client encrypts transfers."""
        if not self.conf.get_bool("dfs.encrypt.data.transfer"):
            return None
        key = self.rpc.call(self._nn(), "get_data_encryption_key")
        if key is None:
            raise HandshakeError(
                "client requires encrypted data transfer but the NameNode "
                "issued no data encryption key")
        return key

    def write_file(self, path: str, data: bytes, replication: int = 2,
                   fail_pipeline_at: Optional[int] = None) -> List[int]:
        """Write a file through a DataNode pipeline; returns its block ids.

        ``fail_pipeline_at`` injects a DataNode failure at that pipeline
        index before streaming, triggering the replace-datanode-on-failure
        recovery path.
        """
        self.rpc.call(self._nn(), "create_file", path, replication)
        block_size = self.conf.get_int("dfs.blocksize")
        block_ids: List[int] = []
        for offset in range(0, max(len(data), 1), block_size):
            chunk = data[offset:offset + block_size]
            block_ids.append(self._write_block(path, chunk, replication,
                                               fail_pipeline_at))
            fail_pipeline_at = None  # inject at most one failure
        return block_ids

    def _write_block(self, path: str, data: bytes, replication: int,
                     fail_pipeline_at: Optional[int]) -> int:
        located = self.rpc.call(self._nn(), "add_block", path, len(data),
                                replication)
        pipeline: List[str] = list(located["pipeline"])
        if fail_pipeline_at is not None and pipeline:
            index = min(fail_pipeline_at, len(pipeline) - 1)
            failed = pipeline[index]
            if self.conf.get_bool(
                    "dfs.client.block.write.replace-datanode-on-failure.enable"):
                replacement = self.rpc.call(self._nn(),
                                            "get_additional_datanode", pipeline)
                pipeline[index] = replacement
            else:
                pipeline.pop(index)
            self.cluster.fail_datanode(failed)
        writer_bpc = self.conf.get_int("dfs.bytes-per-checksum")
        writer_ctype = self.conf.get_enum("dfs.checksum.type")
        checksums = compute_checksums(data, writer_bpc, writer_ctype)
        request = {
            "block_id": located["block_id"],
            "sender_protection": self.conf.get_enum("dfs.data.transfer.protection"),
            "token": located["token"],
            # the writer's checksum parameters travel with the data; a
            # cluster opting into the §7.3 "embed parameter values in the
            # communication" remediation verifies with these instead of
            # its own configuration
            "envelope": seal_envelope({"data": data.hex(),
                                       "checksums": checksums,
                                       "writer_bpc": writer_bpc,
                                       "writer_checksum_type": writer_ctype},
                                      self._encryption_key()),
            "pipeline": pipeline[1:],
        }
        self.cluster.datanode(pipeline[0]).receive_block(request)
        return located["block_id"]

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def read_file(self, path: str) -> bytes:
        """Read a file back, verifying checksums with this client's
        parameters and decoding with this client's encryption settings."""
        blocks = self.rpc.call(self._nn(), "get_block_locations", path)
        expect_encrypted = self.conf.get_bool("dfs.encrypt.data.transfer")
        key = self._encryption_key()
        out = bytearray()
        for block in blocks:
            if not block["locations"]:
                raise HandshakeError("block %d has no live replica"
                                     % block["block_id"])
            datanode = self.cluster.datanode(block["locations"][0])
            response = datanode.transfer_block(
                block["block_id"],
                client_protection=self.conf.get_enum("dfs.data.transfer.protection"),
                client_timeout_ms=self.conf.get_int("dfs.client.socket-timeout"),
                token=block.get("token"))
            payload = open_envelope(response["envelope"], expect_encrypted,
                                    key_lookup=_single_key_lookup(key))
            data = bytes.fromhex(payload["data"])
            if getattr(self.cluster, "embed_wire_metadata", False) \
                    and payload.get("writer_bpc") is not None:
                verify_checksums(data, payload["checksums"],
                                 payload["writer_bpc"],
                                 payload["writer_checksum_type"])
            else:
                verify_checksums(data, payload["checksums"],
                                 self.conf.get_int("dfs.bytes-per-checksum"),
                                 self.conf.get_enum("dfs.checksum.type"))
            out.extend(data)
        return bytes(out)


def _single_key_lookup(key: Optional[Dict[str, Any]]):
    def lookup(key_id: int) -> bytes:
        if key is None or key["key_id"] != key_id:
            raise HandshakeError(
                "client cannot re-compute encryption key %d: block key is "
                "missing" % key_id)
        return bytes.fromhex(key["material"])
    return lookup


def run_fsck(conf: Any, namenode: Any) -> Dict[str, Any]:
    """The DFSck tool: contact the NameNode web UI using the scheme *this
    tool's* configuration selects (Table 3: dfs.http.policy)."""
    return http_get(namenode.http, conf.get_enum("dfs.http.policy"), "/fsck")
