"""The HDFS Balancer (and Mover): block-move dispatch with congestion
control, bandwidth-throttled transfers, and placement validation.

Implements the paper's two §7.1 case studies mechanistically:

* ``dfs.datanode.balance.max.concurrent.moves`` — the Balancer dispatches
  as many concurrent moves as *its* configuration allows; a DataNode
  declines a move when its own limit is reached, and the declined
  dispatcher sleeps 1100 ms before retrying ("such congestion control
  adds an extra delay to the whole procedure", making (DataNode:1,
  Balancer:50) ~10x slower than (1, 1)).
* ``dfs.datanode.balance.bandwidthPerSec`` — a source DataNode paces
  outgoing balancing traffic with *its* bandwidth cap while the target
  charges arrived bytes against *its own* cap; a fast sender drives the
  slow receiver's quota deep into deficit, and the receiver's progress
  reports queue behind the deficit until the Balancer times out.
* ``dfs.namenode.upgrade.domain.factor`` — the Balancer plans moves that
  satisfy *its* domain factor; the NameNode validates them against its
  own, declining forever when the Balancer's factor is laxer.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, List, Optional, Tuple

from repro.common.errors import BalancerTimeout, PlacementPolicyError
from repro.common.ipc import RpcClient
from repro.common.node import Node, node_init, register_node_type

register_node_type("hdfs", "Balancer")
register_node_type("hdfs", "Mover")

#: simulated seconds one block move occupies a DataNode move slot.
TRANSFER_TIME_S = 0.12
#: the dispatcher's congestion-control back-off after a declined move
#: (1100 ms in HDFS's Balancer, per the paper's analysis).
CONGESTION_BACKOFF_S = 1.1
#: retry delay after a placement-policy rejection.
POLICY_RETRY_DELAY_S = 1.0


class Balancer(Node):
    node_type = "Balancer"

    def __init__(self, conf: Any, cluster: Any) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.rpc_client = RpcClient(self.conf, ipc=cluster.ipc)
            self.completed_moves = 0
            self.policy_rejections = 0
            self.last_progress = 0.0

    # ------------------------------------------------------------------
    # planning (uses the *Balancer's* upgrade-domain factor)
    # ------------------------------------------------------------------
    def my_domain_factor(self) -> int:
        return self.conf.get_int("dfs.namenode.upgrade.domain.factor")

    def pick_target(self, replica_dns: List[str], source_dn: str,
                    candidates: List[str], domains: Dict[str, str],
                    use_namenode_factor: bool = False) -> str:
        """First candidate target satisfying the placement factor.

        By default the Balancer uses *its own* configured factor — the
        Table-3 hazard.  With ``use_namenode_factor`` it applies the
        paper's §7.3 remediation and fetches the factor from the
        NameNode, so its plans always satisfy the validating policy.
        """
        if use_namenode_factor:
            factor = self.rpc_client.call(self.cluster.namenode.rpc,
                                          "get_upgrade_domain_factor")
        else:
            factor = self.my_domain_factor()
        replicas = set(replica_dns)
        for target in candidates:
            after = (replicas - {source_dn}) | {target}
            distinct = {domains.get(dn, dn) for dn in after}
            if len(distinct) >= min(factor, len(after)):
                return target
        raise PlacementPolicyError(
            "Balancer found no target satisfying factor %d" % factor)

    # ------------------------------------------------------------------
    # concurrent block moves (max.concurrent.moves case study)
    # ------------------------------------------------------------------
    def run_balancing(self, moves: List[Dict[str, Any]],
                      timeout_s: float = 100.0,
                      fetch_datanode_limits: bool = False) -> Dict[str, Any]:
        """Execute block moves; raises BalancerTimeout past ``timeout_s``.

        Like HDFS's Balancer, moves are dispatched in *iterations*: up to
        ``dfs.datanode.balance.max.concurrent.moves`` (the **Balancer's**
        value) dispatcher threads fire concurrently, and the next batch
        starts only when the whole batch resolved.  A dispatcher whose
        move is declined by the DataNode backs off 1100 ms and retries —
        so a Balancer that over-dispatches against a 1-slot DataNode
        collapses into ~1 move per back-off period (the paper's ~10x
        slowdown).

        ``fetch_datanode_limits`` applies the §7.3 remediation discussed
        under HDFS-7466: "the Balancer should retrieve this value from
        different DataNodes, and accordingly send different numbers of
        tasks to different DataNodes."  The dispatch width is then capped
        by each source DataNode's own limit, so no move is ever declined.
        """
        start = self.sim.now
        width = max(self.conf.get_int(
            "dfs.datanode.balance.max.concurrent.moves"), 1)
        if fetch_datanode_limits and moves:
            fetched = min(
                self.cluster.datanode(move["source"]).conf.get_int(
                    "dfs.datanode.balance.max.concurrent.moves")
                for move in moves)
            width = max(min(width, fetched), 1)
        self.last_progress = start
        pending = list(moves)

        def _iterate() -> Generator:
            for batch_start in range(0, len(pending), width):
                batch = pending[batch_start:batch_start + width]
                workers = [self.sim.spawn(self._dispatch_one(move),
                                          name="balancer-dispatcher")
                           for move in batch]
                for worker in workers:
                    yield worker  # join: next iteration waits for the batch
            return {"elapsed_s": self.sim.now - start,
                    "moves": self.completed_moves}

        iteration = self.sim.spawn(_iterate(), name="balancer-iterations")

        def _supervise() -> Generator:
            while not iteration.done:
                if self.sim.now - start > timeout_s:
                    raise BalancerTimeout(
                        "balancing did not finish within %.0fs "
                        "(%d/%d moves done, %d policy rejections)"
                        % (timeout_s, self.completed_moves, len(moves),
                           self.policy_rejections))
                yield 0.5
            return iteration.result

        return self.sim.run_process(_supervise(), name="balancer-supervisor")

    def _dispatch_one(self, move: Dict[str, Any]) -> Generator:
        """One dispatcher thread driving one block move to completion."""
        namenode = self.cluster.namenode
        while True:
            try:
                self.rpc_client.call(namenode.rpc, "validate_move",
                                     move["block_id"], move["source"],
                                     move["target"])
            except PlacementPolicyError:
                # The NameNode's policy (its own factor) rejected the move;
                # retry later — rebalancing "never finishes" when the
                # factors disagree.
                self.policy_rejections += 1
                yield POLICY_RETRY_DELAY_S
                continue
            source = self.cluster.datanode(move["source"])
            if not source.try_acquire_move_slot():
                yield CONGESTION_BACKOFF_S  # congestion control
                continue
            yield TRANSFER_TIME_S
            source.release_move_slot()
            self.rpc_client.call(namenode.rpc, "apply_move",
                                 move["block_id"], move["source"],
                                 move["target"])
            self.completed_moves += 1
            self.last_progress = self.sim.now
            return

    # ------------------------------------------------------------------
    # throttled bulk transfer (bandwidthPerSec case study)
    # ------------------------------------------------------------------
    def run_throttled_transfer(self, source_dn: str, target_dn: str,
                               block_bytes: int, chunk_bytes: int = 64 * 1024,
                               progress_timeout_s: float = 3.0,
                               critical_reserve_fraction: float = 0.0
                               ) -> Dict[str, Any]:
        """Stream ``block_bytes`` between two DataNodes, requiring a
        progress report (ack) per chunk; raises BalancerTimeout when the
        gap between acks exceeds ``progress_timeout_s``.

        A positive ``critical_reserve_fraction`` applies the §7.3
        remediation ("each node should reserve a small fraction of
        bandwidth for critical traffic like heartbeats or progress
        reports"): acks ride a reserved slice of the cap instead of
        queueing behind the balancing deficit.
        """
        source = self.cluster.datanode(source_dn)
        target = self.cluster.datanode(target_dn)
        total_chunks = max((block_bytes + chunk_bytes - 1) // chunk_bytes, 1)
        state = {"sent": 0, "acked": 0, "last_ack": self.sim.now}
        ack_bytes = 1024

        def _sender() -> Generator:
            for _ in range(total_chunks):
                yield from source.send_paced(chunk_bytes)
                target.absorb_burst(chunk_bytes)
                state["sent"] += 1

        def _acker() -> Generator:
            while state["acked"] < total_chunks:
                if state["sent"] > state["acked"]:
                    if critical_reserve_fraction > 0:
                        yield from target.send_critical(
                            ack_bytes, critical_reserve_fraction)
                    else:
                        yield from target.send_when_clear()
                    state["acked"] += 1
                    state["last_ack"] = self.sim.now
                else:
                    yield 0.05

        sender = self.sim.spawn(_sender(), name="balancer-sender")
        acker = self.sim.spawn(_acker(), name="balancer-acker")

        def _supervise() -> Generator:
            start = self.sim.now
            while state["acked"] < total_chunks:
                if self.sim.now - state["last_ack"] > progress_timeout_s:
                    raise BalancerTimeout(
                        "DataNode %s sent no progress report for %.1fs "
                        "(bandwidth deficit %.0f bytes)"
                        % (target_dn, self.sim.now - state["last_ack"],
                           target.balance_throttler.deficit))
                yield 0.25
            for process in (sender, acker):
                if process.exception is not None:
                    raise process.exception
            return {"elapsed_s": self.sim.now - start, "chunks": total_chunks}

        return self.sim.run_process(_supervise(), name="transfer-supervisor")


class Mover(Balancer):
    """Storage-policy mover; shares the Balancer's dispatch machinery."""

    node_type = "Mover"
