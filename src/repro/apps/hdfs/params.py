"""HDFS parameter registry (curated subset of hdfs-default.xml).

Contains every HDFS parameter from the paper's Table 3 (21 true
heterogeneous-unsafe parameters), the parameters behind HDFS's share of
the false positives (§7.1: private-API inconsistencies, the unrealistic
direct-manipulation test, and the overly strict fsimage-length
assertion), plus companion and safe parameters.  Candidate values are
chosen per §4: default, much larger, much smaller, and documented enums.
"""

from __future__ import annotations

from repro.apps.commonlib.params import COMMON_REGISTRY
from repro.common.params import (BOOL, DURATION_MS, DURATION_S, ENUM, FLOAT,
                                 INT, SIZE, STR, ParamRegistry)
from repro.core.testgen import DependencyRule

HDFS_REGISTRY = ParamRegistry("hdfs")
_d = HDFS_REGISTRY.define

# ---------------------------------------------------------------------------
# Table 3: heterogeneous-unsafe HDFS parameters
# ---------------------------------------------------------------------------
_d("dfs.block.access.token.enable", BOOL, False, tags=("wire-format",),
   description="Require block access tokens; DataNodes need the NameNode's keys.")
_d("dfs.bytes-per-checksum", SIZE, 512, candidates=(512, 4096, 16),
   tags=("wire-format",),
   description="Checksum chunk size; readers recompute with their own value.")
_d("dfs.checksum.type", ENUM, "CRC32", values=("CRC32", "CRC32C", "NULL"),
   tags=("wire-format",),
   description="Checksum algorithm for block data.")
_d("dfs.blockreport.incremental.intervalMsec", DURATION_MS, 0,
   candidates=(0, 300000), tags=("inconsistency",),
   description="Delay before incremental block reports; 0 sends immediately.")
_d("dfs.client.block.write.replace-datanode-on-failure.enable", BOOL, True,
   description="Ask the NameNode for a replacement DataNode on pipeline failure.")
_d("dfs.client.socket-timeout", DURATION_MS, 60000,
   candidates=(60000, 500, 6000000), tags=("timeout",),
   description="Client read deadline on DataNode streams.")
_d("dfs.datanode.balance.bandwidthPerSec", SIZE, 10 * 1024 * 1024,
   candidates=(10 * 1024 * 1024, 1000 * 1024 * 1024, 100 * 1024),
   description="Bandwidth each DataNode may spend on balancing traffic.")
_d("dfs.datanode.balance.max.concurrent.moves", INT, 50, candidates=(50, 1),
   description="Concurrent block moves a DataNode serves for the Balancer.")
_d("dfs.datanode.du.reserved", SIZE, 0, candidates=(0, 10 * 1024 ** 3),
   tags=("inconsistency",),
   description="Bytes per volume excluded from reported capacity.")
_d("dfs.data.transfer.protection", ENUM, "authentication",
   values=("authentication", "integrity", "privacy"), tags=("wire-format",),
   description="SASL QOP for the data-transfer protocol.")
_d("dfs.encrypt.data.transfer", BOOL, False, tags=("wire-format",),
   description="Encrypt block data in flight using NameNode-issued keys.")
_d("dfs.ha.tail-edits.in-progress", BOOL, False,
   description="Allow standby NameNodes to tail in-progress edit segments.")
_d("dfs.heartbeat.interval", DURATION_S, 3, candidates=(3, 3000),
   tags=("heartbeat",),
   description="Seconds between DataNode heartbeats.")
_d("dfs.http.policy", ENUM, "HTTP_ONLY",
   values=("HTTP_ONLY", "HTTPS_ONLY", "HTTP_AND_HTTPS"), tags=("wire-format",),
   description="Schemes served by (and used against) HDFS web endpoints.")
_d("dfs.namenode.fs-limits.max-component-length", INT, 255,
   candidates=(255, 25, 25500), tags=("max-limit",),
   description="Longest allowed path component name.")
_d("dfs.namenode.fs-limits.max-directory-items", INT, 1048576,
   candidates=(1048576, 8), tags=("max-limit",),
   description="Most entries one directory may hold.")
_d("dfs.namenode.heartbeat.recheck-interval", DURATION_MS, 300000,
   candidates=(300000, 3000000, 3000), tags=("inconsistency", "heartbeat"),
   description="Cadence of the NameNode's dead-DataNode sweep.")
_d("dfs.namenode.max-corrupt-file-blocks-returned", INT, 100,
   candidates=(100, 1, 10000), tags=("inconsistency",),
   description="Cap on corrupt blocks returned per listing call.")
_d("dfs.namenode.snapshotdiff.allow.snap-root-descendant", BOOL, True,
   description="Allow snapshot diffs scoped to descendants of the snapshot root.")
_d("dfs.namenode.stale.datanode.interval", DURATION_MS, 30000,
   candidates=(30000, 3000000), tags=("inconsistency", "heartbeat"),
   description="Silence after which a DataNode is considered stale.")
_d("dfs.namenode.upgrade.domain.factor", INT, 3, candidates=(3, 1),
   description="Distinct upgrade domains required per block's replicas.")

# ---------------------------------------------------------------------------
# parameters behind HDFS's false positives (§7.1)
# ---------------------------------------------------------------------------
_d("dfs.image.compress", BOOL, False,
   description="Compress the fsimage (the overly-strict-assertion FP).")
_d("dfs.datanode.max.transfer.threads", INT, 4096, candidates=(4096, 8),
   description="DataXceiver thread cap (the unrealistic-test FP).")
_d("dfs.namenode.replication.work.multiplier.per.iteration", INT, 2,
   candidates=(2, 200),
   description="Replication work scheduled per heartbeat round (private FP).")
_d("dfs.namenode.safemode.threshold-pct", FLOAT, 0.999,
   candidates=(0.999, 0.5),
   description="Fraction of blocks required to leave safe mode (private FP).")
_d("dfs.datanode.directoryscan.interval", DURATION_S, 21600,
   candidates=(21600, 216),
   description="Directory scanner cadence (private FP).")
_d("dfs.namenode.path.based.cache.refresh.interval.ms", DURATION_MS, 30000,
   candidates=(30000, 300),
   description="Cache directive rescan cadence (private FP).")

# ---------------------------------------------------------------------------
# companions pinned by dependency rules (§4)
# ---------------------------------------------------------------------------
_d("dfs.namenode.http-address", STR, "0.0.0.0:9870",
   description="NameNode web UI http address.")
_d("dfs.namenode.https-address", STR, "0.0.0.0:9871",
   description="NameNode web UI https address.")

# ---------------------------------------------------------------------------
# safe parameters read during node initialization (pool population)
# ---------------------------------------------------------------------------
_d("dfs.blocksize", SIZE, 128 * 1024 * 1024,
   description="Default block size used by writers.")
_d("dfs.namenode.handler.count", INT, 10,
   description="NameNode RPC handler threads.")
_d("dfs.namenode.service.handler.count", INT, 10,
   description="NameNode service RPC handler threads.")
_d("dfs.namenode.name.dir", STR, "file:///dfs/name",
   description="Where the NameNode stores its image.")
_d("dfs.namenode.edits.dir", STR, "file:///dfs/edits",
   description="Where the NameNode stores edit logs.")
_d("dfs.namenode.accesstime.precision", DURATION_MS, 3600000,
   description="Granularity of recorded access times.")
_d("dfs.namenode.acls.enabled", BOOL, False,
   description="Enable POSIX ACL support.")
_d("dfs.namenode.checkpoint.period", DURATION_S, 3600,
   description="Seconds between secondary NameNode checkpoints.")
_d("dfs.namenode.checkpoint.txns", INT, 1000000,
   description="Transactions between checkpoints.")
_d("dfs.datanode.handler.count", INT, 10,
   description="DataNode RPC handler threads.")
_d("dfs.datanode.data.dir", STR, "file:///dfs/data",
   description="DataNode volume directories.")
_d("dfs.datanode.sync.behind.writes", BOOL, False,
   description="sync_file_range after writes.")
_d("dfs.datanode.drop.cache.behind.reads", BOOL, False,
   description="posix_fadvise after reads.")
_d("dfs.datanode.scan.period.hours", INT, 504,
   description="Block scanner period.")
_d("dfs.blockreport.intervalMsec", DURATION_MS, 21600000,
   description="Cadence of full block reports (reconciliation only).")
_d("dfs.client.use.datanode.hostname", BOOL, False,
   description="Connect to DataNodes by hostname.")
_d("dfs.client.retry.policy.enabled", BOOL, False,
   description="Enable client retry policy on NameNode calls.")

# ---------------------------------------------------------------------------
# documented parameters never read by the corpus (pre-run filters these)
# ---------------------------------------------------------------------------
_d("dfs.webhdfs.enabled", BOOL, True, description="Enable WebHDFS endpoints.")
_d("dfs.hosts", STR, "", description="Include file of permitted DataNodes.")
_d("dfs.hosts.exclude", STR, "", description="Exclude file of DataNodes.")
_d("dfs.namenode.secondary.http-address", STR, "0.0.0.0:9868",
   description="Secondary NameNode web address.")
_d("dfs.datanode.address", STR, "0.0.0.0:9866",
   description="DataNode data-transfer address.")
_d("dfs.datanode.http.address", STR, "0.0.0.0:9864",
   description="DataNode web address.")
_d("dfs.journalnode.rpc-address", STR, "0.0.0.0:8485",
   description="JournalNode RPC address.")
_d("dfs.ha.automatic-failover.enabled", BOOL, False,
   description="Enable ZKFC automatic failover.")
_d("dfs.namenode.num.checkpoints.retained", INT, 2,
   description="Checkpoint images retained.")
_d("dfs.image.transfer.bandwidthPerSec", SIZE, 0,
   description="Throttle for image transfers; 0 is unlimited.")
_d("dfs.namenode.delegation.token.max-lifetime", DURATION_MS, 7 * 24 * 3600 * 1000,
   description="Delegation token maximum lifetime.")
_d("dfs.client.failover.max.attempts", INT, 15,
   description="Client failover attempts before giving up.")
_d("dfs.datanode.failed.volumes.tolerated", INT, 0,
   description="Volume failures tolerated before shutdown.")
_d("dfs.namenode.replication.min", INT, 1,
   description="Minimal live replicas for a write to succeed.")
_d("dfs.namenode.safemode.extension", DURATION_MS, 30000,
   description="Extra time in safe mode after the threshold is met.")
_d("dfs.namenode.support.allow.format", BOOL, True,
   description="Allow reformatting the NameNode.")
_d("dfs.namenode.fslock.fair", BOOL, True,
   description="Use a fair FSNamesystem lock.")
_d("dfs.datanode.du.reserved.pct", INT, 0,
   description="Percentage alternative to dfs.datanode.du.reserved.")
_d("dfs.storage.policy.enabled", BOOL, True,
   description="Allow setting storage policies.")

# ---------------------------------------------------------------------------
# wiring-audit fixtures: deliberately mis-wired parameters that the audit
# (repro.core.audit) must flag.  Tagged so tests and CI can assert the
# verdicts without hard-coding names elsewhere.
# ---------------------------------------------------------------------------
_d("dfs.namenode.lock.detailed-metrics.enabled", BOOL, False,
   tags=("audit-fixture-unread",),
   description="Audit fixture: documented but wired to no runtime path.")
_d("dfs.datanode.metrics.logger.period.seconds", INT, 600,
   candidates=(600, 6), tags=("audit-fixture-inert",),
   description="Audit fixture: read at DataNode init, value never used.")

#: Effective registry: HDFS parameters plus Hadoop Common's (Table 1).
HDFS_FULL_REGISTRY = HDFS_REGISTRY.merged_with(COMMON_REGISTRY)

#: §4 dependency rules: pick the matching address when testing the policy.
HDFS_DEPENDENCY_RULES = (
    DependencyRule("dfs.http.policy", "HTTPS_ONLY",
                   "dfs.namenode.https-address", "0.0.0.0:9871"),
    DependencyRule("dfs.http.policy", "HTTP_ONLY",
                   "dfs.namenode.http-address", "0.0.0.0:9870"),
)
