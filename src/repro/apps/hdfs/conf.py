"""HDFS-flavoured Configuration bound to the merged HDFS registry."""

from __future__ import annotations

from repro.apps.hdfs.params import HDFS_FULL_REGISTRY
from repro.common.configuration import Configuration


class HdfsConfiguration(Configuration):
    """``Configuration`` whose defaults come from hdfs-default.xml +
    core-default.xml (Table 1: HDFS applications see Hadoop Common's
    parameters too)."""

    registry = HDFS_FULL_REGISTRY
