"""DFSAdmin: HDFS's online-reconfiguration surface.

The paper's motivation leans on exactly this machinery: "HDFS parameter
dfs.datanode.balance.bandwidthPerSec was made online reconfigurable
starting from HDFS 0.20" (HDFS-2202) and "since version 2.9.0, HDFS has
supported reconfiguring dfs.heartbeat.interval at run time with its
reconfiguration interface hdfs dfsadmin -reconfig namenode" (HDFS-1477).
Online reconfiguration is what creates *short-term* heterogeneous
configurations in homogeneous clusters.

Only whitelisted parameters may be reconfigured at run time; the lists
below follow the HDFS properties the paper cites.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.errors import ReproError


class ReconfigurationError(ReproError):
    """The parameter is not online-reconfigurable on that node type."""


#: run-time reconfigurable properties per node type (per HDFS-1477/2202).
RECONFIGURABLE = {
    "NameNode": frozenset({
        "dfs.heartbeat.interval",
        "dfs.namenode.heartbeat.recheck-interval",
    }),
    "DataNode": frozenset({
        "dfs.datanode.balance.bandwidthPerSec",
        "dfs.datanode.balance.max.concurrent.moves",
        "dfs.heartbeat.interval",
    }),
}


class DFSAdmin:
    """The ``hdfs dfsadmin`` tool, scoped to the paper-relevant commands."""

    def __init__(self, conf: Any, cluster: Any) -> None:
        self.conf = conf
        self.cluster = cluster

    # ------------------------------------------------------------------
    # hdfs dfsadmin -reconfig <namenode|datanode> ...
    # ------------------------------------------------------------------
    def reconfig(self, node: Any, param: str, value: Any) -> None:
        """Reconfigure one live node; refuses non-reconfigurable params."""
        allowed = RECONFIGURABLE.get(node.node_type, frozenset())
        if param not in allowed:
            raise ReconfigurationError(
                "%s does not support reconfiguring %r at run time "
                "(reconfigurable: %s)"
                % (node.node_type, param, ", ".join(sorted(allowed)) or "none"))
        node.ensure_running()
        node.conf.set(param, value)

    def reconfig_namenode(self, param: str, value: Any) -> None:
        self.reconfig(self.cluster.namenode, param, value)

    def reconfig_datanode(self, dn_id: str, param: str, value: Any) -> None:
        datanode = self.cluster.datanode(dn_id)
        if datanode is None:
            raise ReconfigurationError("no such DataNode %r" % dn_id)
        self.reconfig(datanode, param, value)

    # ------------------------------------------------------------------
    # hdfs dfsadmin -setBalancerBandwidth <bytes per second>
    # ------------------------------------------------------------------
    def set_balancer_bandwidth(self, bytes_per_second: int) -> int:
        """HDFS-2202: push a new balancing bandwidth to every DataNode
        ("the optimal value of the bandwidthPerSec parameter is not
        always (almost never) known at the time of cluster startup")."""
        updated = 0
        for datanode in self.cluster.datanodes:
            if datanode.running:
                datanode.conf.set("dfs.datanode.balance.bandwidthPerSec",
                                  bytes_per_second)
                updated += 1
        return updated

    # ------------------------------------------------------------------
    # hdfs dfsadmin -report
    # ------------------------------------------------------------------
    def report(self) -> Dict[str, Any]:
        from repro.apps.hdfs.client import DFSClient
        return DFSClient(self.conf, self.cluster).get_stats()

    def list_reconfigurable(self, node_type: str) -> List[str]:
        return sorted(RECONFIGURABLE.get(node_type, frozenset()))
