"""JournalNode and SecondaryNameNode.

The JournalNode stores edit-log segments for HA NameNodes and backs the
Table-3 parameter ``dfs.ha.tail-edits.in-progress``: a standby NameNode
may only fetch the *in-progress* segment when the JournalNode's own
configuration allows serving it — a standby configured to ask for
in-progress edits is declined by a JournalNode configured not to serve
them.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.common.errors import RpcError
from repro.common.ipc import RpcServer
from repro.common.node import Node, node_init, register_node_type

register_node_type("hdfs", "SecondaryNameNode")
register_node_type("hdfs", "JournalNode")


class JournalNode(Node):
    node_type = "JournalNode"

    def __init__(self, conf: Any, cluster: Any, jn_id: str = "jn0") -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.jn_id = jn_id
            #: finalized segments, flattened: list of (txid, edit).
            self.finalized: List[Tuple[int, List[Any]]] = []
            #: the currently open segment.
            self.in_progress: List[Tuple[int, List[Any]]] = []
            self.rpc = RpcServer("JournalNode-%s" % jn_id, self.conf)
            self.rpc.register("journal", self.journal)
            self.rpc.register("finalize_segment", self.finalize_segment)
            self.rpc.register("get_journaled_edits", self.get_journaled_edits)

    def journal(self, txid: int, edit: List[Any]) -> bool:
        self.in_progress.append((txid, edit))
        return True

    def finalize_segment(self) -> bool:
        self.finalized.extend(self.in_progress)
        self.in_progress = []
        return True

    def get_journaled_edits(self, from_txid: int,
                            include_in_progress: bool) -> List[Tuple[int, List[Any]]]:
        """Serve edits from ``from_txid`` on.

        Serving the in-progress segment is gated on *this JournalNode's*
        configuration (Table 3: dfs.ha.tail-edits.in-progress).
        """
        if include_in_progress and not self.conf.get_bool(
                "dfs.ha.tail-edits.in-progress"):
            raise RpcError(
                "JournalNode %s declines request to fetch in-progress "
                "journaled edits (dfs.ha.tail-edits.in-progress is false)"
                % self.jn_id)
        edits = list(self.finalized)
        if include_in_progress:
            edits.extend(self.in_progress)
        return [(txid, edit) for txid, edit in edits if txid >= from_txid]


class SecondaryNameNode(Node):
    """Periodically checkpoints the active NameNode's image."""

    node_type = "SecondaryNameNode"

    def __init__(self, conf: Any, cluster: Any) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self._checkpoint_period = self.conf.get_int(
                "dfs.namenode.checkpoint.period")
            self._checkpoint_txns = self.conf.get_int(
                "dfs.namenode.checkpoint.txns")
            self.checkpoints: List[bytes] = []

    def do_checkpoint(self) -> bytes:
        """Pull an fsimage from the active NameNode and retain it."""
        image = self.cluster.namenode.save_image()
        self.checkpoints.append(image)
        return image
