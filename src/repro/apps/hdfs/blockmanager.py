"""NameNode block management: replica map, corrupt blocks, placement.

Backs three Table-3 parameters:

* ``dfs.namenode.max-corrupt-file-blocks-returned`` — listing corrupt
  blocks truncates to the NameNode's configured cap;
* ``dfs.namenode.upgrade.domain.factor`` — the upgrade-domain block
  placement policy validates balancer moves against the NameNode's
  configured domain factor;
* ``dfs.blockreport.incremental.intervalMsec`` — deletions only leave the
  block map once the owning DataNode's incremental block report arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.common.errors import PlacementPolicyError


@dataclass
class BlockInfo:
    block_id: int
    size: int
    file_path: str
    #: DataNode ids currently holding a replica.
    locations: Set[str] = field(default_factory=set)
    #: replicas deleted on the DataNode but not yet reported to the NameNode.
    pending_deletions: Set[str] = field(default_factory=set)


class BlockManager:
    """The NameNode's view of every block and its replicas."""

    def __init__(self, upgrade_domain_factor_fn, max_corrupt_returned_fn) -> None:
        self._upgrade_domain_factor_fn = upgrade_domain_factor_fn
        self._max_corrupt_returned_fn = max_corrupt_returned_fn
        self.blocks: Dict[int, BlockInfo] = {}
        self.corrupt: Set[int] = set()
        #: DataNode id -> upgrade domain name (set at registration).
        self.upgrade_domains: Dict[str, str] = {}
        self._next_block_id = 1000

    # ------------------------------------------------------------------
    # allocation / bookkeeping
    # ------------------------------------------------------------------
    def allocate(self, file_path: str, size: int) -> BlockInfo:
        info = BlockInfo(block_id=self._next_block_id, size=size,
                         file_path=file_path)
        self._next_block_id += 1
        self.blocks[info.block_id] = info
        return info

    def add_replica(self, block_id: int, dn_id: str) -> None:
        self.blocks[block_id].locations.add(dn_id)

    def live_block_count(self) -> int:
        """Blocks the NameNode still believes have replicas.

        Deliberately ignores ``pending_deletions``: the NameNode's block
        map only shrinks when a DataNode's incremental block report
        arrives, which is exactly the delay
        ``dfs.blockreport.incremental.intervalMsec`` controls.
        """
        return sum(1 for info in self.blocks.values() if info.locations)

    # ------------------------------------------------------------------
    # deletion + incremental block reports
    # ------------------------------------------------------------------
    def begin_deletion(self, block_id: int, dn_id: str) -> None:
        """A replica's deletion was *scheduled* on a DataNode."""
        info = self.blocks.get(block_id)
        if info is not None and dn_id in info.locations:
            info.pending_deletions.add(dn_id)

    def apply_incremental_report(self, dn_id: str,
                                 deleted_block_ids: List[int]) -> None:
        """An IBR arrived: the replicas are really gone now."""
        for block_id in deleted_block_ids:
            info = self.blocks.get(block_id)
            if info is None:
                continue
            info.locations.discard(dn_id)
            info.pending_deletions.discard(dn_id)
            if not info.locations:
                self.blocks.pop(block_id, None)
                self.corrupt.discard(block_id)

    # ------------------------------------------------------------------
    # corrupt blocks (dfs.namenode.max-corrupt-file-blocks-returned)
    # ------------------------------------------------------------------
    def report_bad_blocks(self, block_ids: List[int]) -> None:
        for block_id in block_ids:
            if block_id in self.blocks:
                self.corrupt.add(block_id)

    def list_corrupt_file_blocks(self) -> List[int]:
        """Corrupt blocks, truncated to the NameNode's configured cap."""
        cap = self._max_corrupt_returned_fn()
        return sorted(self.corrupt)[:max(cap, 0)]

    # ------------------------------------------------------------------
    # upgrade-domain placement (dfs.namenode.upgrade.domain.factor)
    # ------------------------------------------------------------------
    def set_upgrade_domain(self, dn_id: str, domain: str) -> None:
        self.upgrade_domains[dn_id] = domain

    def domains_of(self, dn_ids: Set[str]) -> Set[str]:
        return {self.upgrade_domains.get(dn_id, dn_id) for dn_id in dn_ids}

    def validate_move(self, block_id: int, source_dn: str, target_dn: str) -> None:
        """Reject a balancer move that would violate the upgrade-domain
        placement policy *as configured on this NameNode*."""
        info = self.blocks.get(block_id)
        if info is None:
            raise PlacementPolicyError("unknown block %d" % block_id)
        if source_dn not in info.locations:
            raise PlacementPolicyError(
                "block %d has no replica on %s" % (block_id, source_dn))
        after = (info.locations - {source_dn}) | {target_dn}
        required = min(self._upgrade_domain_factor_fn(), len(after))
        distinct = len(self.domains_of(after))
        if distinct < required:
            raise PlacementPolicyError(
                "moving block %d %s->%s leaves %d distinct upgrade domains, "
                "policy requires %d" % (block_id, source_dn, target_dn,
                                        distinct, required))

    def apply_move(self, block_id: int, source_dn: str, target_dn: str) -> None:
        info = self.blocks[block_id]
        info.locations.discard(source_dn)
        info.locations.add(target_dn)
