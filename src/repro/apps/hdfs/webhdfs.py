"""WebHDFS: the NameNode's REST file-system API over its web endpoint.

Rides the policy-aware HTTP server, so clients whose ``dfs.http.policy``
picks a scheme the NameNode doesn't bind fail to connect — the same
Table-3 mechanism as DFSck, exposed through the REST surface real
deployments script against.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.httpserver import http_get


def install_webhdfs_routes(namenode: Any) -> None:
    """Register the WebHDFS operations on a NameNode's web server."""

    def list_status(path: str) -> Dict[str, Any]:
        names = namenode.list_dir(path)
        return {"FileStatuses": {"FileStatus": [
            {"pathSuffix": name} for name in names]}}

    def get_file_status(path: str) -> Dict[str, Any]:
        if not namenode.namespace.exists(path):
            from repro.common.errors import ConnectError
            raise ConnectError("404: no such path %s" % path)
        return {"FileStatus": {"path": path}}

    def mkdirs(path: str) -> Dict[str, Any]:
        namenode.mkdirs(path)
        return {"boolean": True}

    namenode.http.route("/webhdfs/v1/LISTSTATUS", list_status)
    namenode.http.route("/webhdfs/v1/GETFILESTATUS", get_file_status)
    namenode.http.route("/webhdfs/v1/MKDIRS", mkdirs)


class WebHdfsClient:
    """REST client; the scheme comes from *this client's* http policy."""

    def __init__(self, conf: Any, namenode: Any) -> None:
        self.conf = conf
        self.namenode = namenode
        install_webhdfs_routes(namenode)

    def _request(self, op: str, path: str) -> Any:
        return http_get(self.namenode.http,
                        self.conf.get_enum("dfs.http.policy"),
                        "/webhdfs/v1/%s" % op, path)

    def list_status(self, path: str) -> List[str]:
        response = self._request("LISTSTATUS", path)
        return [entry["pathSuffix"]
                for entry in response["FileStatuses"]["FileStatus"]]

    def exists(self, path: str) -> bool:
        from repro.common.errors import ConnectError
        try:
            self._request("GETFILESTATUS", path)
            return True
        except ConnectError as exc:
            if "404" in str(exc):
                return False
            raise

    def mkdirs(self, path: str) -> bool:
        return self._request("MKDIRS", path)["boolean"]
