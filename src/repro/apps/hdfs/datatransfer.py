"""HDFS data-transfer protocol helpers: encryption envelopes.

Block payloads travel in an *envelope* that states whether the body is
encrypted and under which key id.  Senders seal with their own settings;
receivers open with theirs — a receiver expecting encryption fails on a
plaintext stream, and a receiver without the announced key cannot
"re-compute" it (the paper's dfs.encrypt.data.transfer failure mode).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.common.errors import HandshakeError
from repro.common.wire import decode_payload, encode_payload


def seal_envelope(payload: Dict[str, Any],
                  encryption_key: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Seal a block payload with the *sender's* encryption settings.

    ``encryption_key`` is ``{"key_id": int, "material": hex}`` or ``None``
    for a plaintext stream.
    """
    if encryption_key is None:
        body = encode_payload(payload)
        return {"encrypted": False, "key_id": None, "body": body.hex()}
    material = bytes.fromhex(encryption_key["material"])
    body = encode_payload(payload, encryption_key=material)
    return {"encrypted": True, "key_id": encryption_key["key_id"],
            "body": body.hex()}


def open_envelope(envelope: Dict[str, Any], expect_encrypted: bool,
                  key_lookup: Callable[[int], bytes]) -> Dict[str, Any]:
    """Open an envelope with the *receiver's* settings.

    ``key_lookup`` maps a key id to key material, raising
    :class:`~repro.common.errors.HandshakeError` when the receiver never
    obtained that key (e.g. its NameNode has encryption disabled).
    """
    body = bytes.fromhex(envelope["body"])
    if expect_encrypted and not envelope["encrypted"]:
        raise HandshakeError(
            "receiver requires encrypted data transfer but the peer sent "
            "a plaintext block stream")
    if envelope["encrypted"]:
        if not expect_encrypted:
            # A node unaware of encryption reads the stream as plaintext
            # and fails on the garbled bytes (DecodeError).
            return decode_payload(body)
        material = key_lookup(envelope["key_id"])
        return decode_payload(body, encryption_key=material)
    return decode_payload(body)
