"""HDFS namespace: the NameNode's directory tree, fs limits, snapshots.

Implements the pieces behind four Table-3 parameters:

* ``dfs.namenode.fs-limits.max-component-length`` — enforced on every
  component of a new path;
* ``dfs.namenode.fs-limits.max-directory-items`` — enforced when adding a
  child to a directory;
* ``dfs.namenode.snapshotdiff.allow.snap-root-descendant`` — whether a
  snapshot diff may be scoped to a descendant of the snapshot root;
* ``dfs.image.compress`` — the fsimage serialization used by the
  strict-assertion false positive.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.errors import LimitExceededError, SnapshotError


def split_path(path: str) -> List[str]:
    if not path.startswith("/"):
        raise ValueError("HDFS paths are absolute, got %r" % path)
    return [c for c in path.split("/") if c]


@dataclass
class INodeFile:
    name: str
    block_ids: List[int] = field(default_factory=list)
    replication: int = 3


@dataclass
class INodeDirectory:
    name: str
    children: Dict[str, object] = field(default_factory=dict)
    snapshottable: bool = False
    snapshots: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def child_dir(self, name: str) -> "INodeDirectory":
        child = self.children.get(name)
        if not isinstance(child, INodeDirectory):
            raise FileNotFoundError("no such directory %r" % name)
        return child


class Namespace:
    """The file-system tree plus fs-limit checks and snapshots."""

    def __init__(self, max_component_length_fn, max_directory_items_fn) -> None:
        self.root = INodeDirectory(name="")
        self._max_component_length_fn = max_component_length_fn
        self._max_directory_items_fn = max_directory_items_fn

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def lookup_dir(self, path: str) -> INodeDirectory:
        node = self.root
        for component in split_path(path):
            node = node.child_dir(component)
        return node

    def lookup_file(self, path: str) -> INodeFile:
        components = split_path(path)
        if not components:
            raise FileNotFoundError(path)
        parent = self.root
        for component in components[:-1]:
            parent = parent.child_dir(component)
        child = parent.children.get(components[-1])
        if not isinstance(child, INodeFile):
            raise FileNotFoundError("no such file %r" % path)
        return child

    def exists(self, path: str) -> bool:
        try:
            node = self.root
            for component in split_path(path):
                child = node.children.get(component) if isinstance(node, INodeDirectory) else None
                if child is None:
                    return False
                node = child
            return True
        except ValueError:
            return False

    # ------------------------------------------------------------------
    # fs-limit enforcement (NameNode-side, using the NameNode's conf)
    # ------------------------------------------------------------------
    def _check_component(self, component: str) -> None:
        limit = self._max_component_length_fn()
        if limit > 0 and len(component) > limit:
            raise LimitExceededError(
                "component name %r (length %d) exceeds "
                "dfs.namenode.fs-limits.max-component-length=%d"
                % (component[:32], len(component), limit))

    def _check_fanout(self, directory: INodeDirectory) -> None:
        limit = self._max_directory_items_fn()
        if limit > 0 and len(directory.children) >= limit:
            raise LimitExceededError(
                "directory %r already holds %d items, "
                "dfs.namenode.fs-limits.max-directory-items=%d"
                % (directory.name, len(directory.children), limit))

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def mkdirs(self, path: str) -> INodeDirectory:
        node = self.root
        for component in split_path(path):
            child = node.children.get(component)
            if child is None:
                self._check_component(component)
                self._check_fanout(node)
                child = INodeDirectory(name=component)
                node.children[component] = child
            if not isinstance(child, INodeDirectory):
                raise FileExistsError("%r is a file" % component)
            node = child
        return node

    def create_file(self, path: str, replication: int = 3) -> INodeFile:
        components = split_path(path)
        if not components:
            raise ValueError("cannot create root")
        parent = self.mkdirs("/" + "/".join(components[:-1])) if len(components) > 1 \
            else self.root
        name = components[-1]
        if name in parent.children:
            raise FileExistsError(path)
        self._check_component(name)
        self._check_fanout(parent)
        inode = INodeFile(name=name, replication=replication)
        parent.children[name] = inode
        return inode

    def delete(self, path: str) -> List[int]:
        """Remove a path; returns block ids of every deleted file."""
        components = split_path(path)
        parent = self.root
        for component in components[:-1]:
            parent = parent.child_dir(component)
        node = parent.children.pop(components[-1], None)
        if node is None:
            raise FileNotFoundError(path)
        return _collect_blocks(node)

    def rename(self, src: str, dst: str) -> None:
        """Move ``src`` under a (created-if-needed) destination path."""
        src_components = split_path(src)
        dst_components = split_path(dst)
        if not src_components or not dst_components:
            raise ValueError("cannot rename the root")
        parent = self.root
        for component in src_components[:-1]:
            parent = parent.child_dir(component)
        node = parent.children.get(src_components[-1])
        if node is None:
            raise FileNotFoundError(src)
        dst_parent = self.mkdirs("/" + "/".join(dst_components[:-1])) \
            if len(dst_components) > 1 else self.root
        name = dst_components[-1]
        if name in dst_parent.children:
            raise FileExistsError(dst)
        self._check_component(name)
        self._check_fanout(dst_parent)
        parent.children.pop(src_components[-1])
        node.name = name
        dst_parent.children[name] = node

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    def allow_snapshot(self, path: str) -> None:
        self.lookup_dir(path).snapshottable = True

    def create_snapshot(self, path: str, name: str) -> None:
        directory = self.lookup_dir(path)
        if not directory.snapshottable:
            raise SnapshotError("directory %s is not snapshottable" % path)
        directory.snapshots[name] = tuple(sorted(directory.children))

    def snapshot_diff(self, snapshot_root: str, scope_path: str,
                      from_snapshot: str, allow_descendant_fn) -> List[str]:
        """Entries added under ``scope_path`` since ``from_snapshot``.

        ``scope_path`` may be a strict descendant of the snapshot root
        only when the NameNode's configuration allows it (Table 3:
        dfs.namenode.snapshotdiff.allow.snap-root-descendant).
        """
        root_dir = self.lookup_dir(snapshot_root)
        if from_snapshot not in root_dir.snapshots:
            raise SnapshotError("no snapshot %r under %s" % (from_snapshot,
                                                             snapshot_root))
        if scope_path != snapshot_root:
            if not scope_path.startswith(snapshot_root.rstrip("/") + "/"):
                raise SnapshotError("%s is outside snapshot root %s"
                                    % (scope_path, snapshot_root))
            if not allow_descendant_fn():
                raise SnapshotError(
                    "NameNode declines snapshot diff scoped to descendant %s "
                    "(dfs.namenode.snapshotdiff.allow.snap-root-descendant "
                    "is false)" % scope_path)
        scope_dir = self.lookup_dir(scope_path)
        baseline = set(root_dir.snapshots[from_snapshot])
        return sorted(name for name in scope_dir.children if name not in baseline)

    # ------------------------------------------------------------------
    # fsimage (dfs.image.compress)
    # ------------------------------------------------------------------
    def save_image(self, compress: bool) -> bytes:
        payload = json.dumps(_serialize(self.root), sort_keys=True).encode("utf-8")
        if compress:
            return b"IMGC" + zlib.compress(payload, 6)
        return b"IMGP" + payload

    @staticmethod
    def image_contents(image: bytes) -> bytes:
        """Decode an fsimage regardless of compression (semantic compare)."""
        if image.startswith(b"IMGC"):
            return zlib.decompress(image[4:])
        if image.startswith(b"IMGP"):
            return image[4:]
        raise ValueError("not an fsimage")


def _collect_blocks(node: object) -> List[int]:
    if isinstance(node, INodeFile):
        return list(node.block_ids)
    blocks: List[int] = []
    if isinstance(node, INodeDirectory):
        for child in node.children.values():
            blocks.extend(_collect_blocks(child))
    return blocks


def _serialize(node: object) -> object:
    if isinstance(node, INodeFile):
        return {"type": "file", "name": node.name,
                "blocks": sorted(node.block_ids),
                "replication": node.replication}
    assert isinstance(node, INodeDirectory)
    return {"type": "dir", "name": node.name,
            "children": [_serialize(node.children[k])
                         for k in sorted(node.children)]}
