"""Mini-HDFS: NameNode, DataNode, Balancer, Mover, JournalNode,
SecondaryNameNode, DFSClient, and the MiniDFSCluster test harness."""

from repro.apps.hdfs.balancer import Balancer, Mover
from repro.apps.hdfs.client import DFSClient, run_fsck
from repro.apps.hdfs.dfsadmin import DFSAdmin, ReconfigurationError
from repro.apps.hdfs.cluster import MiniDFSCluster
from repro.apps.hdfs.conf import HdfsConfiguration
from repro.apps.hdfs.datanode import DataNode
from repro.apps.hdfs.journal import JournalNode, SecondaryNameNode
from repro.apps.hdfs.namenode import NameNode
from repro.apps.hdfs.params import (HDFS_DEPENDENCY_RULES, HDFS_FULL_REGISTRY,
                                    HDFS_REGISTRY)

#: Paper ground truth (Table 3 / §7.1), used only by benches and tests.
EXPECTED_UNSAFE = (
    "dfs.block.access.token.enable",
    "dfs.bytes-per-checksum",
    "dfs.blockreport.incremental.intervalMsec",
    "dfs.checksum.type",
    "dfs.client.block.write.replace-datanode-on-failure.enable",
    "dfs.client.socket-timeout",
    "dfs.datanode.balance.bandwidthPerSec",
    "dfs.datanode.balance.max.concurrent.moves",
    "dfs.datanode.du.reserved",
    "dfs.data.transfer.protection",
    "dfs.encrypt.data.transfer",
    "dfs.ha.tail-edits.in-progress",
    "dfs.heartbeat.interval",
    "dfs.http.policy",
    "dfs.namenode.fs-limits.max-component-length",
    "dfs.namenode.fs-limits.max-directory-items",
    "dfs.namenode.heartbeat.recheck-interval",
    "dfs.namenode.max-corrupt-file-blocks-returned",
    "dfs.namenode.snapshotdiff.allow.snap-root-descendant",
    "dfs.namenode.stale.datanode.interval",
    "dfs.namenode.upgrade.domain.factor",
)

#: Parameters whose reports the paper classified as false positives.
EXPECTED_FALSE_POSITIVES = (
    "dfs.image.compress",
    "dfs.datanode.max.transfer.threads",
    "dfs.namenode.replication.work.multiplier.per.iteration",
    "dfs.namenode.safemode.threshold-pct",
    "dfs.datanode.directoryscan.interval",
    "dfs.namenode.path.based.cache.refresh.interval.ms",
)

__all__ = [
    "Balancer", "Mover", "DFSClient", "run_fsck", "DFSAdmin",
    "ReconfigurationError", "MiniDFSCluster",
    "HdfsConfiguration", "DataNode", "JournalNode", "SecondaryNameNode",
    "NameNode", "HDFS_DEPENDENCY_RULES", "HDFS_FULL_REGISTRY", "HDFS_REGISTRY",
    "EXPECTED_UNSAFE", "EXPECTED_FALSE_POSITIVES",
]
