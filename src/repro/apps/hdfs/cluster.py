"""MiniDFSCluster: the in-process HDFS cluster used by whole-system tests.

Mirrors HDFS's ``MiniDFSCluster``: NameNode(s), DataNodes, and optional
JournalNode/SecondaryNameNode all run inside one process, created from
the unit test's configuration object — the exact config-sharing pattern
ZebraConf's ConfAgent untangles (§6.1).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.hdfs.datanode import DEFAULT_CAPACITY, DataNode
from repro.apps.hdfs.journal import JournalNode, SecondaryNameNode
from repro.apps.hdfs.namenode import NameNode
from repro.common.cluster import MiniCluster


class MiniDFSCluster(MiniCluster):
    """An HDFS cluster running as objects in this process."""

    def __init__(self, conf: Any, num_datanodes: int = 2,
                 num_namenodes: int = 1, with_journal: bool = False,
                 with_secondary: bool = False,
                 datanode_capacities: Optional[List[int]] = None,
                 upgrade_domains: Optional[List[str]] = None,
                 embed_wire_metadata: bool = False) -> None:
        super().__init__()
        self.conf = conf
        #: §7.3 remediation: verify block data with the *writer's*
        #: checksum parameters, which travel with the data, instead of
        #: each node's configuration file ("Embedding parameter values in
        #: the communication or in the file ... may be a good practice").
        self.embed_wire_metadata = embed_wire_metadata
        self.namenodes: List[NameNode] = []
        self.datanodes: List[DataNode] = []
        self.journalnode: Optional[JournalNode] = None
        self.secondary: Optional[SecondaryNameNode] = None

        for index in range(num_namenodes):
            self.namenodes.append(self.add_node(NameNode(
                conf, self, nn_id="nn%d" % index, standby=index > 0)))
        if with_journal:
            self.journalnode = self.add_node(JournalNode(conf, self))
            for namenode in self.namenodes:
                namenode.journal = self.journalnode
        for index in range(num_datanodes):
            capacity = DEFAULT_CAPACITY
            if datanode_capacities is not None:
                capacity = datanode_capacities[index]
            domain = "ud%d" % index
            if upgrade_domains is not None:
                domain = upgrade_domains[index]
            self.datanodes.append(self.add_node(DataNode(
                conf, self, dn_id="dn%d" % index, capacity=capacity,
                upgrade_domain=domain)))
        if with_secondary:
            self.secondary = self.add_node(SecondaryNameNode(conf, self))

    # ------------------------------------------------------------------
    @property
    def namenode(self) -> NameNode:
        return self.namenodes[0]

    @property
    def standby_namenode(self) -> NameNode:
        if len(self.namenodes) < 2:
            raise ValueError("cluster has no standby NameNode")
        return self.namenodes[1]

    def datanode(self, dn_id: str) -> Optional[DataNode]:
        for node in self.datanodes:
            if node.dn_id == dn_id:
                return node
        return None

    # ------------------------------------------------------------------
    def start(self) -> None:
        for namenode in self.namenodes:
            namenode.start()
        if self.journalnode is not None:
            self.journalnode.start()
        for datanode in self.datanodes:
            datanode.start()
        if self.secondary is not None:
            self.secondary.start()

    def fail_datanode(self, dn_id: str) -> None:
        """Simulate a DataNode crash (used for pipeline-failure tests)."""
        node = self.datanode(dn_id)
        if node is not None:
            node.stop()
            descriptor = self.namenode.datanodes.get(dn_id)
            if descriptor is not None:
                descriptor.declared_dead = True

    # ------------------------------------------------------------------
    # test seeding: place replicas without running the write pipeline
    # ------------------------------------------------------------------
    def place_block(self, path: str, dn_ids: List[str], size: int = 1024) -> int:
        """Create ``path`` (if needed) and register one block with replicas
        on ``dn_ids``.  Used by balancer tests that need a specific replica
        layout; involves no configuration reads."""
        namenode = self.namenode
        if not namenode.namespace.exists(path):
            namenode.namespace.create_file(path, replication=len(dn_ids))
        inode = namenode.namespace.lookup_file(path)
        info = namenode.block_manager.allocate(path, size)
        inode.block_ids.append(info.block_id)
        payload = b"\x00" * min(size, 4096)
        for dn_id in dn_ids:
            namenode.block_manager.add_replica(info.block_id, dn_id)
            datanode = self.datanode(dn_id)
            if datanode is not None:
                datanode.storage[info.block_id] = {"data": payload,
                                                   "checksums": [0]}
        return info.block_id
