"""HBase nodes: HMaster, HRegionServer, ThriftServer, RESTServer."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.hbase.thrift import thrift_decode, thrift_encode
from repro.common.errors import NodeStateError, RpcError
from repro.common.httpserver import HttpServer
from repro.common.node import Node, node_init, register_node_type

register_node_type("hbase", "HMaster")
register_node_type("hbase", "HRegionServer")
register_node_type("hbase", "ThriftServer")
register_node_type("hbase", "RESTServer")


class HMaster(Node):
    node_type = "HMaster"

    def __init__(self, conf: Any, cluster: Any) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            from repro.apps.hbase.conf import HBaseConfiguration
            cluster.ensure_ipc(HBaseConfiguration)
            self._port = self.conf.get_int("hbase.master.port")
            self._balancer_period = self.conf.get_int("hbase.balancer.period")
            #: table name -> list of (region name, region server id).
            self.tables: Dict[str, List[Any]] = {}
            # The master persists its procedure WAL on HDFS using *its*
            # configuration (HBase runs on HDFS; this is how HDFS
            # parameters surface in an HBase campaign, §7.2).
            from repro.apps.hdfs.client import DFSClient
            self._dfs = DFSClient(self.conf, cluster)

    def create_table(self, name: str, num_regions: int = 2) -> List[str]:
        if name in self.tables:
            raise RpcError("table %s already exists" % name)
        servers = self.cluster.regionservers
        assignments = []
        for index in range(num_regions):
            region = "%s,region-%d" % (name, index)
            server = servers[index % len(servers)]
            server.host_region(region)
            assignments.append((region, server.rs_id))
        self.tables[name] = assignments
        self._dfs.write_file("/hbase/MasterProcWALs/%s" % name,
                             ("create:%s" % name).encode("utf-8") * 8,
                             replication=1)
        return [region for region, _ in assignments]

    def locate_region(self, table: str, row: str) -> "HRegionServer":
        assignments = self.tables.get(table)
        if not assignments:
            raise RpcError("no such table %s" % table)
        region, rs_id = assignments[sum(row.encode()) % len(assignments)]
        return self.cluster.regionserver(rs_id)


class HRegionServer(Node):
    node_type = "HRegionServer"

    def __init__(self, conf: Any, cluster: Any, rs_id: str) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.rs_id = rs_id
            self._handler_count = self.conf.get_int(
                "hbase.regionserver.handler.count")
            self._memstore_flush_size = self.conf.get_int(
                "hbase.hregion.memstore.flush.size")
            #: internal field behind the private-API false positive.
            self._msg_interval = self.conf.get_int(
                "hbase.regionserver.msginterval")
            self.regions: List[str] = []
            self._data: Dict[str, str] = {}
            #: in-memory WAL tail, persisted per region on the embedded
            #: HDFS (HBase durably logs every mutation before acking)
            self.wal_entries: List[str] = []
            from repro.apps.hdfs.client import DFSClient
            self._dfs = DFSClient(self.conf, cluster)

    def host_region(self, region: str) -> None:
        self.regions.append(region)
        # roll a WAL segment for the region on HDFS, written with *this
        # RegionServer's* configuration (checksums, tokens, transfer
        # protection all apply)
        self._dfs.write_file("/hbase/WALs/%s/%s" % (self.rs_id, region),
                             ("open:%s" % region).encode("utf-8") * 4,
                             replication=1)

    def put(self, row: str, value: str) -> None:
        self.ensure_running()
        self.wal_entries.append("%s=%s" % (row, value))
        self._data[row] = value

    def get(self, row: str) -> Optional[str]:
        self.ensure_running()
        return self._data.get(row)

    # ------------------------------------------------------------------
    def open_region(self, region: str, expected_split_size: int) -> None:
        """Open a region directly (private server entry point).

        Real clients reach this only through an RPC, where the server
        applies *its own* split threshold; the corpus contains a test
        that calls it in-process with the client's configured value —
        the paper's unrealistic-setting false positive.
        """
        if expected_split_size != self.conf.get_int("hbase.hregion.max.filesize"):
            raise NodeStateError(
                "region %s opened with split size %d but this server is "
                "configured for %d"
                % (region, expected_split_size,
                   self.conf.get_int("hbase.hregion.max.filesize")))
        self.host_region(region)


class ThriftServer(Node):
    node_type = "ThriftServer"

    def __init__(self, conf: Any, cluster: Any) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self._port = self.conf.get_int("hbase.regionserver.thrift.port")

    def serve(self, wire_bytes: bytes) -> bytes:
        """Decode a Thrift request and route it, replying in *this
        server's* protocol/transport (Table 3: thrift.compact/framed)."""
        self.ensure_running()
        compact = self.conf.get_bool("hbase.regionserver.thrift.compact")
        framed = self.conf.get_bool("hbase.regionserver.thrift.framed")
        request = thrift_decode(wire_bytes, compact=compact, framed=framed)
        master = self.cluster.master
        if request["op"] == "put":
            server = master.locate_region(request["table"], request["row"])
            server.put(request["row"], request["value"])
            response: Any = {"ok": True}
        elif request["op"] == "get":
            server = master.locate_region(request["table"], request["row"])
            response = {"ok": True, "value": server.get(request["row"])}
        else:
            response = {"ok": False, "error": "unknown op"}
        return thrift_encode(response, compact=compact, framed=framed)


class RESTServer(Node):
    node_type = "RESTServer"

    def __init__(self, conf: Any, cluster: Any) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self._port = self.conf.get_int("hbase.rest.port")
            self.http = HttpServer("RESTServer", "HTTP_ONLY")
            self.http.route("/status/cluster", self._handle_status)

    def _handle_status(self) -> Dict[str, Any]:
        return {
            "regionservers": len(self.cluster.regionservers),
            "tables": len(self.cluster.master.tables),
        }
