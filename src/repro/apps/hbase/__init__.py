"""Mini-HBase: HMaster, HRegionServer, ThriftServer, RESTServer over an
embedded mini-HDFS."""

from repro.apps.hbase.cluster import MiniHBaseCluster, ThriftAdmin
from repro.apps.hbase.conf import HBaseConfiguration
from repro.apps.hbase.nodes import (HMaster, HRegionServer, RESTServer,
                                    ThriftServer)
from repro.apps.hbase.params import HBASE_FULL_REGISTRY, HBASE_REGISTRY

#: Paper ground truth (Table 3 / §7.1), used only by benches and tests.
EXPECTED_UNSAFE = (
    "hbase.regionserver.thrift.compact",
    "hbase.regionserver.thrift.framed",
)

EXPECTED_FALSE_POSITIVES = (
    "hbase.hregion.max.filesize",
    "hbase.regionserver.msginterval",
)

__all__ = [
    "MiniHBaseCluster", "ThriftAdmin", "HBaseConfiguration", "HMaster",
    "HRegionServer", "RESTServer", "ThriftServer", "HBASE_FULL_REGISTRY",
    "HBASE_REGISTRY", "EXPECTED_UNSAFE", "EXPECTED_FALSE_POSITIVES",
]
