"""HBase corpus: Thrift round trips, table ops over HDFS, FP sources."""

from __future__ import annotations

from repro.apps.hbase import HBaseConfiguration, MiniHBaseCluster, ThriftAdmin
from repro.common.errors import TestFailure
from repro.core.registry import TestContext, unit_test


@unit_test("hbase", "TestThriftServer.testPutGetRoundTrip",
           tags=("thrift",))
def test_thrift_put_get(ctx: TestContext) -> None:
    """A ThriftAdmin talks to the ThriftServer; protocol and transport
    framing come from each side's own configuration (Table 3:
    hbase.regionserver.thrift.compact / .framed)."""
    conf = HBaseConfiguration()
    with MiniHBaseCluster(conf, num_regionservers=2,
                          with_thrift=True) as cluster:
        cluster.start()
        cluster.master.create_table("thrift_table")
        admin = ThriftAdmin(conf, cluster)
        admin.put("thrift_table", "row1", "value1")
        reply = admin.get("thrift_table", "row1")
        if reply.get("value") != "value1":
            raise TestFailure("thrift round trip lost the value: %r" % reply)


@unit_test("hbase", "TestAdmin.testCreateTableAndPut", tags=("master",))
def test_create_table_and_put(ctx: TestContext) -> None:
    """Create a table (the master persists its procedure WAL on the
    embedded HDFS) and read/write through region location."""
    conf = HBaseConfiguration()
    with MiniHBaseCluster(conf, num_regionservers=2) as cluster:
        cluster.start()
        regions = cluster.master.create_table("usertable", num_regions=4)
        if len(regions) != 4:
            raise TestFailure("expected 4 regions, got %d" % len(regions))
        server = cluster.master.locate_region("usertable", "alpha")
        server.put("alpha", "1")
        if cluster.master.locate_region("usertable", "alpha").get("alpha") != "1":
            raise TestFailure("row lost after region location")
        cluster.check_health()


@unit_test("hbase", "TestRegionServer.testDirectOpenRegion",
           realistic=False, tags=("internals",),
           notes="§7.1 FP: 'an HBase test directly opens a new region on "
                 "HRegionServer ... with the client's configuration "
                 "object' — impossible through a real RPC.")
def test_direct_open_region(ctx: TestContext) -> None:
    conf = HBaseConfiguration()
    with MiniHBaseCluster(conf, num_regionservers=1) as cluster:
        cluster.start()
        # Direct in-process call with the *client's* configured split size.
        cluster.regionservers[0].open_region(
            "direct,region-0",
            expected_split_size=conf.get_int("hbase.hregion.max.filesize"))


@unit_test("hbase", "TestRegionServerMetrics.testMsgIntervalInternals",
           observability="private", tags=("internals",))
def test_msg_interval_internals(ctx: TestContext) -> None:
    conf = HBaseConfiguration()
    with MiniHBaseCluster(conf, num_regionservers=1) as cluster:
        cluster.start()
        expected = conf.get_int("hbase.regionserver.msginterval")
        if cluster.regionservers[0]._msg_interval != expected:
            raise TestFailure("status-message cadence internals diverged "
                              "from the test's configuration")


@unit_test("hbase", "TestRESTServer.testClusterStatus", tags=("rest",))
def test_rest_status(ctx: TestContext) -> None:
    conf = HBaseConfiguration()
    with MiniHBaseCluster(conf, num_regionservers=2,
                          with_rest=True) as cluster:
        cluster.start()
        status = cluster.rest_server.http.handle("http", "/status/cluster")
        if status["regionservers"] != 2:
            raise TestFailure("REST status lost a RegionServer")


@unit_test("hbase", "TestAssignmentManager.testRacyAssignment", flaky=True,
           tags=("flaky",),
           notes="Nondeterministic: assignment races the master ~20% of "
                 "trials.")
def test_racy_assignment(ctx: TestContext) -> None:
    conf = HBaseConfiguration()
    with MiniHBaseCluster(conf, num_regionservers=2) as cluster:
        cluster.start()
        cluster.master.create_table("racy_table")
        if ctx.maybe(0.2):
            raise TestFailure("region assignment raced the master restart "
                              "and lost (timing-dependent)")


@unit_test("hbase", "TestHBaseConfiguration.testDefaults", tags=("util",))
def test_hbase_conf_defaults(ctx: TestContext) -> None:
    """Node-free configuration sanity checks, filtered by the pre-run."""
    conf = HBaseConfiguration()
    if conf.get_bool("hbase.regionserver.thrift.compact"):
        raise TestFailure("compact protocol should default off")
    if conf.get_int("hbase.rest.port") != 8080:
        raise TestFailure("unexpected REST port default")
