"""HBase corpus: additional master and thrift scenarios."""

from __future__ import annotations

from repro.apps.hbase import HBaseConfiguration, MiniHBaseCluster, ThriftAdmin
from repro.common.errors import TestFailure
from repro.common.rngblock import randrange_block
from repro.core.registry import TestContext, unit_test


@unit_test("hbase", "TestMaster.testMultipleTables", tags=("master",))
def test_multiple_tables(ctx: TestContext) -> None:
    conf = HBaseConfiguration()
    with MiniHBaseCluster(conf, num_regionservers=3) as cluster:
        cluster.start()
        for name in ("users", "events", "metrics"):
            regions = cluster.master.create_table(name, num_regions=3)
            if len(regions) != 3:
                raise TestFailure("table %s got %d regions" % (name,
                                                               len(regions)))
        hosted = sum(len(rs.regions) for rs in cluster.regionservers)
        if hosted != 9:
            raise TestFailure("RegionServers host %d of 9 regions" % hosted)
        cluster.check_health()


@unit_test("hbase", "TestWALDurability.testRegionWALsOnHDFS",
           tags=("regionserver",))
def test_region_wals_on_hdfs(ctx: TestContext) -> None:
    """Every hosted region rolls a WAL segment on the embedded HDFS, and
    mutations land in the WAL tail before the memstore acks."""
    conf = HBaseConfiguration()
    with MiniHBaseCluster(conf, num_regionservers=2) as cluster:
        cluster.start()
        cluster.master.create_table("durable", num_regions=2)
        for server in cluster.regionservers:
            for region in server.regions:
                path = "/hbase/WALs/%s/%s" % (server.rs_id, region)
                if not cluster.namenode.namespace.exists(path):
                    raise TestFailure("missing WAL segment %s" % path)
        server = cluster.master.locate_region("durable", "rowX")
        server.put("rowX", "v1")
        if "rowX=v1" not in server.wal_entries:
            raise TestFailure("mutation missing from the WAL tail")
        cluster.check_health()


@unit_test("hbase", "TestThriftServer.testManyRoundTrips", tags=("thrift",))
def test_thrift_many_round_trips(ctx: TestContext) -> None:
    conf = HBaseConfiguration()
    with MiniHBaseCluster(conf, num_regionservers=2,
                          with_thrift=True) as cluster:
        cluster.start()
        cluster.master.create_table("bulk")
        admin = ThriftAdmin(conf, cluster)
        rows = {"row%02d" % i: "value%02d" % draw
                for i, draw in enumerate(randrange_block(ctx.rng, 100, 10))}
        for row, value in rows.items():
            admin.put("bulk", row, value)
        for row, value in rows.items():
            reply = admin.get("bulk", row)
            if reply.get("value") != value:
                raise TestFailure("thrift lost %s" % row)
