"""The HBase whole-system unit-test corpus ZebraConf reuses."""

import repro.apps.hbase.suite.hbase_tests  # noqa: F401
import repro.apps.hbase.suite.more_hbase_tests  # noqa: F401
