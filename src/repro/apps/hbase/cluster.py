"""MiniHBaseCluster: HBase nodes plus the embedded mini-HDFS they run on."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.apps.hbase.nodes import HMaster, HRegionServer, RESTServer, ThriftServer
from repro.apps.hbase.thrift import thrift_decode, thrift_encode
from repro.apps.hdfs.datanode import DataNode
from repro.apps.hdfs.namenode import NameNode
from repro.common.cluster import MiniCluster


class MiniHBaseCluster(MiniCluster):
    """HMaster + RegionServers (+ Thrift/REST) over an embedded one-node
    HDFS, all inside this process and built from the test's conf."""

    def __init__(self, conf: Any, num_regionservers: int = 2,
                 with_thrift: bool = False, with_rest: bool = False) -> None:
        super().__init__()
        self.conf = conf
        # embedded HDFS substrate (HBase stores its WALs/HFiles there)
        self.namenode = self.add_node(NameNode(conf, self))
        self.datanodes: List[DataNode] = [
            self.add_node(DataNode(conf, self, dn_id="dn0"))]
        # HBase daemons
        self.master = self.add_node(HMaster(conf, self))
        self.regionservers: List[HRegionServer] = []
        for index in range(num_regionservers):
            self.regionservers.append(self.add_node(
                HRegionServer(conf, self, rs_id="rs%d" % index)))
        self.thrift_server: Optional[ThriftServer] = None
        if with_thrift:
            self.thrift_server = self.add_node(ThriftServer(conf, self))
        self.rest_server: Optional[RESTServer] = None
        if with_rest:
            self.rest_server = self.add_node(RESTServer(conf, self))

    # -- the HDFS-cluster protocol DFSClient/DataNode expect --------------
    def datanode(self, dn_id: str) -> Optional[DataNode]:
        for node in self.datanodes:
            if node.dn_id == dn_id:
                return node
        return None

    def fail_datanode(self, dn_id: str) -> None:  # pragma: no cover - unused
        node = self.datanode(dn_id)
        if node is not None:
            node.stop()

    def regionserver(self, rs_id: str) -> Optional[HRegionServer]:
        for node in self.regionservers:
            if node.rs_id == rs_id:
                return node
        return None

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.namenode.start()
        for node in self.datanodes:
            node.start()
        self.master.start()
        for node in self.regionservers:
            node.start()
        if self.thrift_server is not None:
            self.thrift_server.start()
        if self.rest_server is not None:
            self.rest_server.start()


class ThriftAdmin:
    """Client-side Thrift wrapper; frames requests per the *test's* conf."""

    def __init__(self, conf: Any, cluster: MiniHBaseCluster) -> None:
        self.conf = conf
        self.cluster = cluster

    def _roundtrip(self, request: Any) -> Any:
        compact = self.conf.get_bool("hbase.regionserver.thrift.compact")
        framed = self.conf.get_bool("hbase.regionserver.thrift.framed")
        wire = thrift_encode(request, compact=compact, framed=framed)
        reply = self.cluster.thrift_server.serve(wire)
        return thrift_decode(reply, compact=compact, framed=framed)

    def put(self, table: str, row: str, value: str) -> Any:
        return self._roundtrip({"op": "put", "table": table, "row": row,
                                "value": value})

    def get(self, table: str, row: str) -> Any:
        return self._roundtrip({"op": "get", "table": table, "row": row})
