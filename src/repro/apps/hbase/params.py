"""HBase parameter registry (curated subset of hbase-default.xml).

HBase runs on HDFS, so its effective registry merges hbase-default with
hdfs-default and core-default — the paper notes that an HBase campaign
also tests HDFS NameNode/DataNode parameters (§7.2).
"""

from __future__ import annotations

from repro.apps.commonlib.params import COMMON_REGISTRY
from repro.apps.hdfs.params import HDFS_REGISTRY
from repro.common.params import (BOOL, DURATION_MS, INT, SIZE, STR,
                                 ParamRegistry)

HBASE_REGISTRY = ParamRegistry("hbase")
_d = HBASE_REGISTRY.define

# ---------------------------------------------------------------------------
# Table 3: heterogeneous-unsafe HBase parameters
# ---------------------------------------------------------------------------
_d("hbase.regionserver.thrift.compact", BOOL, False, tags=("wire-format",),
   description="Use the Thrift compact protocol on the ThriftServer.")
_d("hbase.regionserver.thrift.framed", BOOL, False, tags=("wire-format",),
   description="Use the framed Thrift transport on the ThriftServer.")

# ---------------------------------------------------------------------------
# parameters behind HBase's false positives (§7.1)
# ---------------------------------------------------------------------------
_d("hbase.hregion.max.filesize", SIZE, 10 * 1024 ** 3,
   candidates=(10 * 1024 ** 3, 1024 ** 3),
   description="Region split threshold (the unrealistic-test FP: a test "
               "opens a region directly on the RegionServer).")
_d("hbase.regionserver.msginterval", DURATION_MS, 3000,
   candidates=(3000, 300000),
   description="RegionServer status-message cadence (internal; the HBase "
               "private-API FP).")

# ---------------------------------------------------------------------------
# safe parameters read by nodes
# ---------------------------------------------------------------------------
_d("hbase.regionserver.handler.count", INT, 30,
   description="RPC handlers per RegionServer.")
_d("hbase.client.retries.number", INT, 15,
   description="Client operation retry budget.")
_d("hbase.hregion.memstore.flush.size", SIZE, 128 * 1024 * 1024,
   description="Memstore flush threshold.")
_d("hbase.master.port", INT, 16000, description="HMaster RPC port.")
_d("hbase.regionserver.thrift.port", INT, 9090,
   description="ThriftServer port.")
_d("hbase.rest.port", INT, 8080, description="RESTServer port.")
_d("hbase.zookeeper.quorum", STR, "localhost",
   description="ZooKeeper ensemble.")
_d("hbase.balancer.period", DURATION_MS, 300000,
   description="Master balancer cadence.")

# ---------------------------------------------------------------------------
# documented parameters never read by the corpus
# ---------------------------------------------------------------------------
_d("hbase.table.max.rowsize", SIZE, 1024 * 1024 * 1024,
   description="Largest row returnable to a client.")
_d("hbase.hstore.blockingStoreFiles", INT, 16,
   description="Store files that block flushes.")
_d("hbase.hstore.compactionThreshold", INT, 3,
   description="Store files triggering compaction.")
_d("hbase.regionserver.logroll.period", DURATION_MS, 3600000,
   description="WAL roll cadence.")
_d("hbase.master.logcleaner.ttl", DURATION_MS, 600000,
   description="Retention for WALs awaiting replication.")
_d("hbase.client.scanner.caching", INT, 2147483647,
   description="Rows fetched per scanner RPC.")
_d("hbase.security.authentication", STR, "simple",
   description="HBase authentication mode.")

#: HBase sees HDFS's and Hadoop Common's parameters too.
HBASE_FULL_REGISTRY = HBASE_REGISTRY.merged_with(HDFS_REGISTRY,
                                                 COMMON_REGISTRY)
