"""HBase-flavoured Configuration bound to the merged HBase registry."""

from __future__ import annotations

from repro.apps.hbase.params import HBASE_FULL_REGISTRY
from repro.common.configuration import Configuration


class HBaseConfiguration(Configuration):
    """``Configuration`` with hbase-default + hdfs-default + core-default
    defaults (HBase runs on HDFS)."""

    registry = HBASE_FULL_REGISTRY
