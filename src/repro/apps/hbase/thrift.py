"""Thrift protocol/transport framing for the HBase ThriftServer.

Two independent wire decisions back the two Table-3 HBase parameters:

* protocol — *compact* vs *binary* encodings carry different magics
  (``hbase.regionserver.thrift.compact``);
* transport — *framed* transport adds a length-prefixed frame header
  (``hbase.regionserver.thrift.framed``).

A ThriftAdmin client encodes per its own configuration; the ThriftServer
decodes per its own, so either mismatch yields a real
:class:`~repro.common.errors.DecodeError` — "Thrift Admin fails to
communicate with Thrift Server".
"""

from __future__ import annotations

import json
import struct
from typing import Any

from repro.common.errors import DecodeError

_COMPACT_MAGIC = b"TCPB"
_BINARY_MAGIC = b"TBIN"
_FRAME_MAGIC = b"FRMD"


def thrift_encode(payload: Any, compact: bool, framed: bool) -> bytes:
    magic = _COMPACT_MAGIC if compact else _BINARY_MAGIC
    body = magic + json.dumps(payload, sort_keys=True).encode("utf-8")
    if framed:
        return _FRAME_MAGIC + struct.pack(">I", len(body)) + body
    return body


def thrift_decode(data: bytes, compact: bool, framed: bool) -> Any:
    if framed:
        if not data.startswith(_FRAME_MAGIC):
            raise DecodeError("framed transport expected a frame header, "
                              "got %r" % data[:4])
        (length,) = struct.unpack(">I", data[4:8])
        body = data[8:]
        if len(body) != length:
            raise DecodeError("frame length %d does not match body %d"
                              % (length, len(body)))
    else:
        if data.startswith(_FRAME_MAGIC):
            raise DecodeError("unframed transport cannot parse a framed "
                              "message")
        body = data
    expected = _COMPACT_MAGIC if compact else _BINARY_MAGIC
    if not body.startswith(expected):
        raise DecodeError("protocol mismatch: expected %r, got %r"
                          % (expected, body[:4]))
    try:
        return json.loads(body[len(expected):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DecodeError("thrift payload parse failed: %s" % exc)
