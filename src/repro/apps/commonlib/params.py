"""Hadoop Common parameter registry (curated subset of core-default.xml).

Contains the two Common parameters the paper found heterogeneous-unsafe
(Table 3), the four ``ipc.client.*`` parameters behind the shared-IPC
false positives (§7.1), and a realistic population of safe parameters
that nodes read during initialization (feeding ZebraConf's pools).
"""

from __future__ import annotations

from repro.common.params import (BOOL, DURATION_MS, ENUM, INT, SIZE, STR,
                                 ParamDef, ParamRegistry)

COMMON_REGISTRY = ParamRegistry("hadoop-common")
_d = COMMON_REGISTRY.define

# -- heterogeneous-unsafe (Table 3, "Hadoop Common") -----------------------
_d("hadoop.rpc.protection", ENUM, "authentication",
   values=("authentication", "integrity", "privacy"),
   tags=("wire-format",),
   description="SASL QOP for RPC; mismatched peers cannot negotiate.")
_d("ipc.client.rpc-timeout.ms", DURATION_MS, 0,
   candidates=(0, 1000, 120000), tags=("timeout",),
   description="Client-side RPC read deadline; 0 disables it.")

# -- shared-IPC false-positive parameters (§7.1) ----------------------------
_d("ipc.client.connect.max.retries", INT, 10, candidates=(10, 1000, 1),
   description="Connection retry budget (read via the shared IPC component).")
_d("ipc.client.connect.retry.interval", DURATION_MS, 1000,
   candidates=(1000, 100000, 10),
   description="Delay between connection retries.")
_d("ipc.client.idlethreshold", INT, 4000, candidates=(4000, 400000, 40),
   description="Connections above which idle scanning starts.")
_d("ipc.client.kill.max", INT, 10, candidates=(10, 1000, 1),
   description="Max idle connections killed per scan.")

# -- safe parameters read by library code ----------------------------------
_d("io.file.buffer.size", SIZE, 4096,
   description="Buffer size for sequence files and stream copies.")
_d("ipc.server.listen.queue.size", INT, 128,
   description="Server socket accept backlog.")
_d("ipc.client.connect.timeout", DURATION_MS, 20000,
   description="Connection establishment deadline.")
_d("ipc.client.connection.maxidletime", DURATION_MS, 10000,
   description="Idle time before a client connection is culled.")
_d("ipc.maximum.data.length", SIZE, 64 * 1024 * 1024,
   description="Largest acceptable RPC message.")
_d("ipc.server.handler.queue.size", INT, 100,
   description="Calls queued per RPC handler.")

# -- safe parameters typically set in core-site.xml (rarely read in tests) --
_d("fs.defaultFS", STR, "hdfs://localhost:9000",
   description="Default filesystem URI.")
_d("hadoop.tmp.dir", STR, "/tmp/hadoop",
   description="Base for temporary directories.")
_d("fs.trash.interval", INT, 0,
   description="Minutes between trash checkpoints; 0 disables trash.")
_d("fs.trash.checkpoint.interval", INT, 0,
   description="Minutes between trash checkpoint creation.")
_d("fs.df.interval", DURATION_MS, 60000,
   description="Disk-usage refresh interval.")
_d("fs.du.interval", DURATION_MS, 600000,
   description="Filesystem usage refresh interval.")
_d("hadoop.security.authentication", ENUM, "simple",
   values=("simple", "kerberos"),
   description="Cluster authentication mode.")
_d("hadoop.security.authorization", BOOL, False,
   description="Enable service-level authorization checks.")
_d("io.seqfile.compress.blocksize", SIZE, 1000000,
   description="Block size for block-compressed sequence files.")
_d("io.compression.codec.bzip2.library", STR, "system-native",
   description="Which bzip2 implementation to use.")
_d("io.serializations", STR, "org.apache.hadoop.io.serializer.WritableSerialization",
   description="Serialization framework classes.")
_d("net.topology.script.number.args", INT, 100,
   description="Max arguments per topology script invocation.")
_d("hadoop.util.hash.type", ENUM, "murmur", values=("murmur", "jenkins"),
   description="Default Hash implementation.")
_d("io.map.index.skip", INT, 0,
   description="Index entries to skip between reads.")
_d("io.map.index.interval", INT, 128,
   description="MapFile index interval.")
_d("file.stream-buffer-size", SIZE, 4096,
   description="Stream buffer for local filesystem.")
_d("file.blocksize", SIZE, 67108864,
   description="Local filesystem block size.")
_d("file.replication", INT, 1,
   description="Local filesystem replication (always 1).")
_d("hadoop.rpc.socket.factory.class.default", STR,
   "org.apache.hadoop.net.StandardSocketFactory",
   description="Socket factory used by RPC clients.")
_d("hadoop.kerberos.kinit.command", STR, "kinit",
   description="Path to kinit for ticket renewal.")
_d("hadoop.security.groups.cache.secs", INT, 300,
   description="Group mapping cache TTL.")
_d("hadoop.http.filter.initializers", STR,
   "org.apache.hadoop.http.lib.StaticUserWebFilter",
   description="Web UI filter initializer classes.")
_d("hadoop.registry.zk.session.timeout.ms", DURATION_MS, 60000,
   description="ZK registry session timeout.")
_d("hadoop.caller.context.enabled", BOOL, False,
   description="Attach caller context to audit logs.")
_d("hadoop.shell.missing.defaultFs.warning", BOOL, False,
   description="Warn when fs.defaultFS is unset.")
_d("seq.io.sort.mb", SIZE, 100,
   description="Sort buffer for sequence file merges.")
_d("seq.io.sort.factor", INT, 100,
   description="Merge fan-in for sequence file sorts.")


def common_ground_truth() -> dict:
    """Paper ground truth for Hadoop Common (used by benches only)."""
    return {
        "unsafe": ["hadoop.rpc.protection", "ipc.client.rpc-timeout.ms"],
        "false_positives": [
            "ipc.client.connect.max.retries",
            "ipc.client.connect.retry.interval",
            "ipc.client.idlethreshold",
            "ipc.client.kill.max",
        ],
    }
