"""Hadoop Common analogue: the parameter registry and library machinery
shared by HDFS, MapReduce, YARN, and Hadoop Tools (Table 1: the Hadoop
Common library has 336 parameters seen by every Hadoop application)."""

from repro.apps.commonlib.params import COMMON_REGISTRY, common_ground_truth

__all__ = ["COMMON_REGISTRY", "common_ground_truth"]
