"""Simulated target applications (one subpackage per system under test).

Import :mod:`repro.apps.catalog` for the per-application registries,
dependency rules, and the paper's ground-truth tables.
"""
