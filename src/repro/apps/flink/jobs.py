"""A minimal Flink job: distributed word count over TaskManager slots.

The job exercises the full scheduling + data-plane path: the JobManager
allocates one slot per subtask (its own view of slot counts — Table 3:
taskmanager.numberOfTaskSlots), mapper subtasks run on their assigned
TaskManagers, and every shuffle partition crosses the TaskManager data
plane (Table 3: taskmanager.data.ssl.enabled).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.errors import TestFailure


def run_distributed_wordcount(cluster: Any, lines: List[str],
                              parallelism: int) -> Dict[str, int]:
    """Execute a two-stage (map -> keyed reduce) job; returns word counts.

    Raises whatever the scheduler or data plane raises — slot allocation
    failures, SSL record errors — exactly where a real job would fail.
    """
    jobmanager = cluster.jobmanager
    allocations = jobmanager.allocate_slots(parallelism)

    # stage 1: map — each subtask counts words in its slice of the input
    mapper_outputs: List[Dict[str, int]] = []
    for subtask, allocation in enumerate(allocations):
        counts: Dict[str, int] = {}
        for line in lines[subtask::parallelism]:
            for word in line.split():
                counts[word] = counts.get(word, 0) + 1
        mapper_outputs.append(counts)

    # stage 2: keyed shuffle — each mapper's partition for reducer r is
    # streamed over the TaskManager data plane to r's TaskManager
    reducers = allocations  # same slots host the reduce side
    for subtask, counts in enumerate(mapper_outputs):
        sender = cluster.taskmanager(allocations[subtask]["tm_id"])
        partitions: List[List[Any]] = [[] for _ in reducers]
        for word, count in sorted(counts.items()):
            partitions[_partition(word, len(reducers))].append([word, count])
        for reducer_index, records in enumerate(partitions):
            receiver = cluster.taskmanager(reducers[reducer_index]["tm_id"])
            sender.send_partition(receiver, records)

    # reduce: merge everything that arrived on each TaskManager
    merged: Dict[str, int] = {}
    for taskmanager in cluster.taskmanagers:
        for records in taskmanager.received_partitions:
            for word, count in records:
                merged[word] = merged.get(word, 0) + count
    return merged


def _partition(word: str, num_partitions: int) -> int:
    return sum(word.encode("utf-8")) % max(num_partitions, 1)


def assert_counts_match(actual: Dict[str, int], lines: List[str]) -> None:
    expected: Dict[str, int] = {}
    for line in lines:
        for word in line.split():
            expected[word] = expected.get(word, 0) + 1
    if actual != expected:
        raise TestFailure("distributed word count diverged: %d keys vs %d"
                          % (len(actual), len(expected)))
