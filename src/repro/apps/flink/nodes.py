"""Flink nodes: JobManager (with its internal ResourceManager) and
TaskManager, plus the actor-system and data-plane wire layers."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.configuration import Configuration
from repro.common.errors import SlotAllocationError
from repro.common.node import Node, node_init, register_node_type
from repro.common.params import ParamRegistry
from repro.common.wire import decode_payload, encode_payload

register_node_type("flink", "JobManager")
register_node_type("flink", "TaskManager")


class FlinkConfiguration(Configuration):
    """Flink's Configuration (flink-conf.yaml options)."""

    registry: Optional[ParamRegistry] = None  # bound in __init__.py


class JobManager(Node):
    node_type = "JobManager"

    def __init__(self, conf: Any, cluster: Any) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self._rpc_port = self.conf.get_int("jobmanager.rpc.port")
            self._rest_port = self.conf.get_int("rest.port")
            self._default_parallelism = self.conf.get_int("parallelism.default")
            #: registered TaskManagers, in registration order.
            self.taskmanagers: List["TaskManager"] = []

    # ------------------------------------------------------------------
    # actor-system RPC (akka.ssl.enabled)
    # ------------------------------------------------------------------
    def receive_akka_message(self, wire_bytes: bytes) -> Dict[str, Any]:
        """Decode an actor message with *this JobManager's* SSL setting."""
        message = decode_payload(
            wire_bytes, ssl=self.conf.get_bool("akka.ssl.enabled"))
        if message["kind"] == "register_taskmanager":
            taskmanager = self.cluster.taskmanager(message["tm_id"])
            self.taskmanagers.append(taskmanager)
            return {"accepted": True, "index": len(self.taskmanagers) - 1}
        raise ValueError("unknown actor message %r" % message["kind"])

    # ------------------------------------------------------------------
    # slot allocation (taskmanager.numberOfTaskSlots)
    # ------------------------------------------------------------------
    def slots_per_taskmanager(self) -> int:
        """How many slots the JobManager *believes* each TaskManager has —
        its own configuration value, not the TaskManagers'."""
        return self.conf.get_int("taskmanager.numberOfTaskSlots")

    def allocate_slots(self, parallelism: int) -> List[Dict[str, Any]]:
        believed = self.slots_per_taskmanager()
        capacity = believed * len(self.taskmanagers)
        if parallelism > capacity:
            raise SlotAllocationError(
                "job needs %d slots but the JobManager sees only %d "
                "(%d TaskManagers x %d believed slots)"
                % (parallelism, capacity, len(self.taskmanagers), believed))
        allocations = []
        for subtask in range(parallelism):
            taskmanager = self.taskmanagers[subtask // believed]
            slot_index = subtask % believed
            taskmanager.offer_slot(slot_index)
            allocations.append({"tm_id": taskmanager.tm_id,
                                "slot": slot_index})
        return allocations


class TaskManager(Node):
    node_type = "TaskManager"

    def __init__(self, conf: Any, cluster: Any, tm_id: str) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.tm_id = tm_id
            self._init_components()

    def _init_components(self) -> None:
        """Read configuration and set up slot/network state.

        Kept as a separate method so Flink's test utilities — which copy
        node initialization code into the tests instead of invoking it
        (§7.2: 'its unit tests do not invoke the initialization functions
        directly and instead copy the initialization code into the unit
        test code') — can be emulated faithfully in
        :mod:`repro.apps.flink.testing`.
        """
        self.num_slots = self.conf.get_int("taskmanager.numberOfTaskSlots")
        self.occupied_slots: List[int] = []
        self._memory_size = self.conf.get_str("taskmanager.memory.process.size")
        self._heartbeat_interval = self.conf.get_int("heartbeat.interval")
        self._heartbeat_timeout = self.conf.get_int("heartbeat.timeout")
        self._state_backend = self.conf.get_str("state.backend")
        self._tmp_dirs = self.conf.get_str("io.tmp.dirs")
        #: internals behind the private-API false positives.
        self._network_fraction = self.conf.get_float(
            "taskmanager.memory.network.fraction")
        self._detailed_metrics = self.conf.get_bool(
            "taskmanager.network.detailed-metrics")
        self.received_partitions: List[Any] = []

    # ------------------------------------------------------------------
    # actor-system RPC
    # ------------------------------------------------------------------
    def register_with(self, jobmanager: JobManager) -> Dict[str, Any]:
        """Send the registration actor message framed with *this
        TaskManager's* SSL setting (Table 3: akka.ssl.enabled)."""
        wire = encode_payload({"kind": "register_taskmanager",
                               "tm_id": self.tm_id},
                              ssl=self.conf.get_bool("akka.ssl.enabled"))
        return jobmanager.receive_akka_message(wire)

    # ------------------------------------------------------------------
    # slots
    # ------------------------------------------------------------------
    def offer_slot(self, slot_index: int) -> None:
        if slot_index >= self.num_slots:
            raise SlotAllocationError(
                "JobManager requested slot %d but TaskManager %s has only "
                "%d slots" % (slot_index, self.tm_id, self.num_slots))
        if slot_index not in self.occupied_slots:
            self.occupied_slots.append(slot_index)

    # ------------------------------------------------------------------
    # data plane (taskmanager.data.ssl.enabled)
    # ------------------------------------------------------------------
    def send_partition(self, peer: "TaskManager", records: List[Any]) -> None:
        wire = encode_payload(
            {"kind": "partition", "records": records},
            ssl=self.conf.get_bool("taskmanager.data.ssl.enabled"))
        peer.receive_partition(wire)

    def receive_partition(self, wire_bytes: bytes) -> None:
        message = decode_payload(
            wire_bytes,
            ssl=self.conf.get_bool("taskmanager.data.ssl.enabled"))
        self.received_partitions.append(message["records"])
