"""Mini-Flink: JobManager, TaskManager, MiniFlinkCluster."""

from repro.apps.flink.cluster import MiniFlinkCluster
from repro.apps.flink.nodes import FlinkConfiguration, JobManager, TaskManager
from repro.apps.flink.params import FLINK_REGISTRY
from repro.apps.flink.testing import start_taskmanager_inline

FlinkConfiguration.registry = FLINK_REGISTRY

#: Paper ground truth (Table 3 / §7.1), used only by benches and tests.
EXPECTED_UNSAFE = (
    "akka.ssl.enabled",
    "taskmanager.data.ssl.enabled",
    "taskmanager.numberOfTaskSlots",
)

EXPECTED_FALSE_POSITIVES = (
    "taskmanager.memory.network.fraction",
    "taskmanager.network.detailed-metrics",
)

__all__ = [
    "MiniFlinkCluster", "FlinkConfiguration", "JobManager", "TaskManager",
    "FLINK_REGISTRY", "start_taskmanager_inline", "EXPECTED_UNSAFE",
    "EXPECTED_FALSE_POSITIVES",
]
