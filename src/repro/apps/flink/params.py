"""Flink parameter registry (curated subset of flink-conf.yaml options).

Flink is not a Hadoop application: it does not see Hadoop Common's
parameters (Table 1) and has its own configuration class.
"""

from __future__ import annotations

from repro.common.params import (BOOL, DURATION_MS, FLOAT, INT, STR,
                                 ParamRegistry)

FLINK_REGISTRY = ParamRegistry("flink")
_d = FLINK_REGISTRY.define

# ---------------------------------------------------------------------------
# Table 3: heterogeneous-unsafe Flink parameters
# ---------------------------------------------------------------------------
_d("akka.ssl.enabled", BOOL, False, tags=("wire-format",),
   description="TLS on the actor-system RPC between TaskManager and "
               "JobManager/ResourceManager.")
_d("taskmanager.data.ssl.enabled", BOOL, False, tags=("wire-format",),
   description="TLS on the TaskManager data plane (shuffle partitions).")
_d("taskmanager.numberOfTaskSlots", INT, 2, candidates=(2, 8),
   tags=("task-count",),
   description="Slots a TaskManager offers; the JobManager sizes its "
               "requests with its own value.")

# ---------------------------------------------------------------------------
# parameters behind Flink's private-observability false positives (§7.1)
# ---------------------------------------------------------------------------
_d("taskmanager.memory.network.fraction", FLOAT, 0.1, candidates=(0.1, 0.5),
   description="Network buffer fraction (internal; private-API FP).")
_d("taskmanager.network.detailed-metrics", BOOL, False,
   description="Register detailed network metrics (internal; private-API FP).")

# ---------------------------------------------------------------------------
# safe parameters read during node initialization
# ---------------------------------------------------------------------------
_d("jobmanager.rpc.port", INT, 6123, description="JobManager RPC port.")
_d("rest.port", INT, 8081, description="REST/web endpoint port.")
_d("parallelism.default", INT, 1, description="Default job parallelism.")
_d("taskmanager.memory.process.size", STR, "1728m",
   description="Total TaskManager process memory.")
_d("heartbeat.interval", DURATION_MS, 10000,
   description="Heartbeat sender cadence (read but not modelled).")
_d("heartbeat.timeout", DURATION_MS, 50000,
   description="Heartbeat receiver timeout (read but not modelled).")
_d("state.backend", STR, "hashmap", description="Keyed-state backend.")
_d("io.tmp.dirs", STR, "/tmp", description="Spill directories.")

# ---------------------------------------------------------------------------
# documented options never read by the corpus
# ---------------------------------------------------------------------------
_d("restart-strategy", STR, "none", description="Job restart strategy.")
_d("jobmanager.memory.process.size", STR, "1600m",
   description="Total JobManager process memory.")
_d("execution.checkpointing.interval", DURATION_MS, 0,
   description="Checkpoint cadence; 0 disables checkpoints.")
_d("web.submit.enable", BOOL, True,
   description="Allow job submission through the web UI.")
_d("high-availability", STR, "NONE", description="HA services backend.")
_d("blob.server.port", INT, 0, description="Blob server port (0 = random).")
_d("taskmanager.host", STR, "localhost", description="TaskManager bind host.")
_d("cluster.evenly-spread-out-slots", BOOL, False,
   description="Spread slot allocation across TaskManagers.")
