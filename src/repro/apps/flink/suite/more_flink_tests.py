"""Flink corpus: additional scheduling and data-plane scenarios."""

from __future__ import annotations

from repro.apps.flink import FlinkConfiguration, MiniFlinkCluster
from repro.common.errors import SlotAllocationError, TestFailure
from repro.common.rngblock import randrange_block
from repro.core.registry import TestContext, unit_test


@unit_test("flink", "SlotPoolTest.testSingleTaskManagerCapacity",
           tags=("scheduler",))
def test_single_taskmanager_capacity(ctx: TestContext) -> None:
    """A job sized exactly to one TaskManager's slots (per the user's
    configuration) must schedule; one slot more must be rejected."""
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=1) as cluster:
        cluster.start()
        slots = conf.get_int("taskmanager.numberOfTaskSlots")
        allocations = cluster.jobmanager.allocate_slots(parallelism=slots)
        if len(allocations) != slots:
            raise TestFailure("scheduled %d of %d subtasks"
                              % (len(allocations), slots))
        try:
            cluster.jobmanager.allocate_slots(parallelism=slots + 1)
        except SlotAllocationError:
            pass
        else:
            raise TestFailure("over-subscription was not rejected")


@unit_test("flink", "WordCountITCase.testDistributedExecution",
           tags=("job",))
def test_distributed_wordcount(ctx: TestContext) -> None:
    """A whole job: scheduling across slots + keyed shuffle over the
    TaskManager data plane, with the result checked end to end."""
    from repro.apps.flink.jobs import assert_counts_match, run_distributed_wordcount
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=2) as cluster:
        cluster.start()
        words = ["term%02d" % draw
                 for draw in randrange_block(ctx.rng, 30, 200)]
        lines = [" ".join(words[i:i + 8]) for i in range(0, len(words), 8)]
        parallelism = conf.get_int("taskmanager.numberOfTaskSlots") * 2
        counts = run_distributed_wordcount(cluster, lines, parallelism)
        assert_counts_match(counts, lines)


@unit_test("flink", "NettyShuffleEnvironmentTest.testAllToAllTransfer",
           tags=("network",))
def test_all_to_all_transfer(ctx: TestContext) -> None:
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=3) as cluster:
        cluster.start()
        for sender in cluster.taskmanagers:
            for receiver in cluster.taskmanagers:
                if sender is not receiver:
                    sender.send_partition(receiver, [sender.tm_id])
        for taskmanager in cluster.taskmanagers:
            if len(taskmanager.received_partitions) != 2:
                raise TestFailure("%s received %d of 2 partitions"
                                  % (taskmanager.tm_id,
                                     len(taskmanager.received_partitions)))
