"""The Flink whole-system unit-test corpus ZebraConf reuses."""

import repro.apps.flink.suite.flink_tests  # noqa: F401
import repro.apps.flink.suite.more_flink_tests  # noqa: F401
