"""Flink corpus: registration, data plane, slot allocation, internals."""

from __future__ import annotations

from repro.apps.flink import FlinkConfiguration, MiniFlinkCluster
from repro.common.errors import TestFailure
from repro.common.rngblock import randrange_block
from repro.core.registry import TestContext, unit_test


@unit_test("flink", "TaskExecutorTest.testRegistrationWithJobManager",
           tags=("rpc",))
def test_taskmanager_registration(ctx: TestContext) -> None:
    """TaskManagers register over the actor system; mismatched SSL framing
    aborts the connection (Table 3: akka.ssl.enabled)."""
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=2) as cluster:
        cluster.start()
        if len(cluster.jobmanager.taskmanagers) != 2:
            raise TestFailure("JobManager registered %d of 2 TaskManagers"
                              % len(cluster.jobmanager.taskmanagers))


@unit_test("flink", "NettyShuffleEnvironmentTest.testPartitionTransfer",
           tags=("network",))
def test_partition_transfer(ctx: TestContext) -> None:
    """One TaskManager streams a result partition to another; mismatched
    data-plane SSL produces an invalid TLS record (Table 3:
    taskmanager.data.ssl.enabled)."""
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=2) as cluster:
        cluster.start()
        records = randrange_block(ctx.rng, 1000, 50)
        sender, receiver = cluster.taskmanagers
        sender.send_partition(receiver, records)
        if receiver.received_partitions != [records]:
            raise TestFailure("partition bytes corrupted in flight")


@unit_test("flink", "MiniClusterITCase.testJobUsesAllSlots",
           tags=("scheduler",))
def test_job_uses_all_slots(ctx: TestContext) -> None:
    """Run a job sized to the cluster capacity the *user* computes from
    their configuration; the JobManager sizes requests with its own value
    and the TaskManagers enforce theirs (Table 3:
    taskmanager.numberOfTaskSlots)."""
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=2) as cluster:
        cluster.start()
        parallelism = conf.get_int("taskmanager.numberOfTaskSlots") * 2
        allocations = cluster.jobmanager.allocate_slots(parallelism)
        if len(allocations) != parallelism:
            raise TestFailure("allocated %d of %d requested slots"
                              % (len(allocations), parallelism))


@unit_test("flink", "MiniClusterITCase.testClusterStarts", tags=("smoke",))
def test_cluster_starts(ctx: TestContext) -> None:
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=3) as cluster:
        cluster.start()
        if len(cluster.taskmanagers) != 3:
            raise TestFailure("cluster lost a TaskManager")


@unit_test("flink", "NetworkBufferPoolTest.testFractionInternals",
           observability="private", tags=("internals",),
           notes="§7.1 FP: asserts a TaskManager-internal field against "
                 "the test's configuration.")
def test_network_fraction_internals(ctx: TestContext) -> None:
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=1) as cluster:
        cluster.start()
        expected = conf.get_float("taskmanager.memory.network.fraction")
        if cluster.taskmanagers[0]._network_fraction != expected:
            raise TestFailure("network buffer internals diverged from the "
                              "test's configuration")


@unit_test("flink", "MetricsRegistryTest.testDetailedMetricsInternals",
           observability="private", tags=("internals",))
def test_detailed_metrics_internals(ctx: TestContext) -> None:
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=1) as cluster:
        cluster.start()
        expected = conf.get_bool("taskmanager.network.detailed-metrics")
        if cluster.taskmanagers[0]._detailed_metrics != expected:
            raise TestFailure("metrics registration internals diverged "
                              "from the test's configuration")


@unit_test("flink", "CheckpointCoordinatorTest.testRacyCheckpoint",
           flaky=True, tags=("flaky",),
           notes="Nondeterministic: the checkpoint barrier races task "
                 "shutdown ~20% of trials.")
def test_racy_checkpoint(ctx: TestContext) -> None:
    conf = FlinkConfiguration()
    with MiniFlinkCluster(conf, num_taskmanagers=2) as cluster:
        cluster.start()
        if ctx.maybe(0.2):
            raise TestFailure("checkpoint barrier raced task shutdown and "
                              "lost (timing-dependent)")


@unit_test("flink", "ConfigurationTest.testOptionDefaults", tags=("util",))
def test_option_defaults(ctx: TestContext) -> None:
    """Node-free configuration sanity checks, filtered by the pre-run."""
    conf = FlinkConfiguration()
    if conf.get_int("taskmanager.numberOfTaskSlots") <= 0:
        raise TestFailure("non-positive default slot count")
    if conf.get_int("rest.port") != 8081:
        raise TestFailure("unexpected default REST port")
