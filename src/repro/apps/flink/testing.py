"""Flink test utilities, reproducing Flink's inlined-initialization quirk.

The paper (§7.2): "Flink is more complicated: its node class has
initialization functions, which are used in a real distributed setting,
but its unit tests do not invoke the initialization functions directly
and instead copy the initialization code into the unit test code ...
it required additional effort on our part to identify and annotate the
copied initialization code."

``start_taskmanager_inline`` is that copied initialization code: it
builds a TaskManager without running ``TaskManager.__init__``, performing
the setup steps itself — so the ZebraConf ``startInit``/``stopInit`` and
``refToCloneConf`` annotations had to be added *here*, in test-utility
code, accounting for Flink's larger Table-4 annotation count.
"""

from __future__ import annotations

from typing import Any

from repro.apps.flink.nodes import TaskManager
from repro.common.configuration import ref_to_clone
from repro.core.confagent import current_agent


def start_taskmanager_inline(conf: Any, cluster: Any, tm_id: str) -> TaskManager:
    """Create and start a TaskManager the way Flink's MiniCluster tests
    do: by inlining the node's initialization code."""
    taskmanager = TaskManager.__new__(TaskManager)
    # ZebraConf annotation of the *copied* init code (extra effort for
    # Flink, Table 4):
    current_agent().start_init(taskmanager, TaskManager.node_type)
    try:
        # --- begin code copied from TaskManager initialization ---
        taskmanager.conf = ref_to_clone(conf)
        taskmanager.cluster = cluster
        taskmanager.sim = cluster.sim
        taskmanager._running = False
        taskmanager._periodic_tasks = []
        taskmanager.tm_id = tm_id
        taskmanager._init_components()
        # --- end copied code ---
    finally:
        current_agent().stop_init()
    cluster.add_node(taskmanager)
    taskmanager.start()
    return taskmanager
