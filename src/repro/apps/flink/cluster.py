"""Flink MiniCluster: one JobManager plus inlined-init TaskManagers."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.apps.flink.nodes import JobManager, TaskManager
from repro.apps.flink.testing import start_taskmanager_inline
from repro.common.cluster import MiniCluster


class MiniFlinkCluster(MiniCluster):
    """In-process Flink cluster, built the way Flink's unit tests build
    theirs (TaskManagers initialized by copied code, §7.2)."""

    def __init__(self, conf: Any, num_taskmanagers: int = 2) -> None:
        super().__init__()
        self.conf = conf
        self.jobmanager = self.add_node(JobManager(conf, self))
        self.taskmanagers: List[TaskManager] = []
        self._num_taskmanagers = num_taskmanagers

    def start(self) -> None:
        self.jobmanager.start()
        for index in range(self._num_taskmanagers):
            taskmanager = start_taskmanager_inline(self.conf, self,
                                                   tm_id="tm%d" % index)
            self.taskmanagers.append(taskmanager)
            taskmanager.register_with(self.jobmanager)

    def taskmanager(self, tm_id: str) -> Optional[TaskManager]:
        for taskmanager in self.taskmanagers:
            if taskmanager.tm_id == tm_id:
                return taskmanager
        return None
