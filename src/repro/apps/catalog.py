"""Catalog of target applications: registries, rules, ground truth.

The campaign order matches Table 5's columns (Flink, Hadoop Tools,
HBase, HDFS, MapReduce, YARN).  Ground-truth sets mirror Table 3 and the
§7.1 false-positive discussion; they are consumed only by benchmarks and
tests, never by detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.common.params import ParamRegistry
from repro.core.registry import load_all_suites
from repro.core.testgen import DependencyRule

#: Table 5 column order.
APP_NAMES = ("flink", "hadooptools", "hbase", "hdfs", "mapreduce", "yarn")

#: Table 1 statistics from the paper, for side-by-side reporting.
PAPER_STATISTICS = {
    "flink": {"unit_tests": 26226, "app_params": 447},
    "hadooptools": {"unit_tests": 1518, "app_params": 0},
    "hbase": {"unit_tests": 4985, "app_params": 206},
    "hdfs": {"unit_tests": 6445, "app_params": 579},
    "mapreduce": {"unit_tests": 1423, "app_params": 210},
    "yarn": {"unit_tests": 4806, "app_params": 465},
    "hadoop-common": {"unit_tests": 0, "app_params": 336},
}

#: Table 3's "why the parameter is heterogeneous unsafe" column, verbatim.
TABLE3_WHY = {
    # Flink
    "akka.ssl.enabled":
        "TaskManager fails to connect to ResourceManager.",
    "taskmanager.data.ssl.enabled":
        "TaskManager fails to decode peer message due to invalid SSL/TLS "
        "record.",
    "taskmanager.numberOfTaskSlots":
        "JobManager fails to allocate slot from TaskManager.",
    # Hadoop Common
    "hadoop.rpc.protection":
        "RPC client fails to connect to RPC servers.",
    "ipc.client.rpc-timeout.ms":
        "Socket connection timeouts.",
    # HBase
    "hbase.regionserver.thrift.compact":
        "Thrift Admin fails to communicate with Thrift Server.",
    "hbase.regionserver.thrift.framed":
        "Thrift Admin fails to communicate with Thrift Server.",
    # HDFS
    "dfs.block.access.token.enable":
        "DataNode fails to register block pools.",
    "dfs.bytes-per-checksum":
        "Checksum verification fails on DataNode.",
    "dfs.blockreport.incremental.intervalMsec":
        "End users may observe inconsistent number of blocks.",
    "dfs.checksum.type":
        "Checksum verification fails on DataNode.",
    "dfs.client.block.write.replace-datanode-on-failure.enable":
        "NameNode reports Exception when Client tries to find additional "
        "DataNode.",
    "dfs.client.socket-timeout":
        "Socket connection timeouts.",
    "dfs.datanode.balance.bandwidthPerSec":
        "Balancer timeouts because DataNode fails to reply in time.",
    "dfs.datanode.balance.max.concurrent.moves":
        "Balancer becomes 10x slower due to DataNode congestion control.",
    "dfs.datanode.du.reserved":
        "End users may observe inconsistent size of reserved space.",
    "dfs.data.transfer.protection":
        "Sasl handshake fails between Client and DataNode.",
    "dfs.encrypt.data.transfer":
        "DataNode fails to re-compute encryption key as block key is "
        "missing.",
    "dfs.ha.tail-edits.in-progress":
        "JournalNode declines NameNode's request to fetch journaled edits.",
    "dfs.heartbeat.interval":
        "NameNode falsely identifies alive DataNode as crashed.",
    "dfs.http.policy":
        "Tool DFSck fails to connect to HTTP server.",
    "dfs.namenode.fs-limits.max-component-length":
        "Length of component name path exceeds maximum limit on NameNode.",
    "dfs.namenode.fs-limits.max-directory-items":
        "Directory item number exceeds maximum limit on NameNode.",
    "dfs.namenode.heartbeat.recheck-interval":
        "End users may observe inconsistent number of dead DataNodes.",
    "dfs.namenode.max-corrupt-file-blocks-returned":
        "End users may observe inconsistent number of corrupted blocks.",
    "dfs.namenode.snapshotdiff.allow.snap-root-descendant":
        "NameNode declines Client's request to do snapshot.",
    "dfs.namenode.stale.datanode.interval":
        "End users may observe inconsistent number of stale DataNodes.",
    "dfs.namenode.upgrade.domain.factor":
        "Balancer hangs because of block placement policy violation on "
        "NameNode.",
    # MapReduce
    "mapreduce.fileoutputcommitter.algorithm.version":
        "Different Mapper/Reducer output commit dirs cause Hadoop Archive "
        "error.",
    "mapreduce.job.encrypted-intermediate-data":
        "Reducer fails during shuffling due to checksum error.",
    "mapreduce.job.maps":
        "Reducer fails when copying Mapper output.",
    "mapreduce.job.reduces":
        "Reducer fails when copying Mapper output.",
    "mapreduce.map.output.compress":
        "Reducer fails during shuffling due to incorrect header.",
    "mapreduce.map.output.compress.codec":
        "Reducer fails during shuffling due to incorrect header.",
    "mapreduce.output.fileoutputformat.compress":
        "End users may observe inconsistent names of output files.",
    "mapreduce.shuffle.ssl.enabled":
        "NodeManager's Pluggable Shuffle fails to decode messages.",
    # Yarn
    "yarn.http.policy":
        "Client fails to connect with Timeline web services.",
    "yarn.resourcemanager.delegation.token.renew-interval":
        "End users may observe newer tokens expire earlier than prior "
        "tokens.",
    "yarn.scheduler.maximum-allocation-mb":
        "ResourceManager disallows value decreasement.",
    "yarn.scheduler.maximum-allocation-vcores":
        "ResourceManager disallows value decreasement.",
    "yarn.timeline-service.enabled":
        "Client fails to connect to Timeline Server.",
}

#: Table 5 instance counts from the paper, for side-by-side reporting.
PAPER_TABLE5 = {
    "flink": (7193881080, 2019422, 1972278, 259573),
    "hadooptools": (373850400, 356016, 346588, 89744),
    "hbase": (557761680, 6145374, 6033174, 1438929),
    "hdfs": (387499008, 10404952, 10242886, 1968218),
    "mapreduce": (284486160, 482272, 430800, 104588),
    "yarn": (705346824, 668020, 640338, 312726),
}


@dataclass(frozen=True)
class AppSpec:
    name: str
    registry: ParamRegistry
    dependency_rules: Tuple[DependencyRule, ...] = ()
    expected_unsafe: Tuple[str, ...] = ()
    expected_false_positives: Tuple[str, ...] = ()


def spec_for(app: str) -> AppSpec:
    load_all_suites()
    import repro.apps.flink as flink
    import repro.apps.hbase as hbase
    import repro.apps.hdfs as hdfs
    import repro.apps.hadooptools as hadooptools
    import repro.apps.mapreduce as mapreduce
    import repro.apps.yarn as yarn
    from repro.apps.commonlib import common_ground_truth

    common = common_ground_truth()
    specs = {
        "flink": AppSpec(
            "flink", flink.FLINK_REGISTRY,
            expected_unsafe=flink.EXPECTED_UNSAFE,
            expected_false_positives=flink.EXPECTED_FALSE_POSITIVES),
        "hadooptools": AppSpec(
            "hadooptools", hdfs.HDFS_FULL_REGISTRY,
            dependency_rules=tuple(hdfs.HDFS_DEPENDENCY_RULES),
            expected_unsafe=tuple(hadooptools.EXPECTED_UNSAFE_VIA_TOOLS)),
        "hbase": AppSpec(
            "hbase", hbase.HBASE_FULL_REGISTRY,
            dependency_rules=tuple(hdfs.HDFS_DEPENDENCY_RULES),
            expected_unsafe=hbase.EXPECTED_UNSAFE,
            expected_false_positives=hbase.EXPECTED_FALSE_POSITIVES),
        "hdfs": AppSpec(
            "hdfs", hdfs.HDFS_FULL_REGISTRY,
            dependency_rules=tuple(hdfs.HDFS_DEPENDENCY_RULES),
            # hadoop.rpc.protection surfaces through every HDFS RPC; the
            # other Common parameter (ipc.client.rpc-timeout.ms) needs the
            # long-running DistCp listing and belongs to the Hadoop Tools
            # campaign's expectations.
            expected_unsafe=hdfs.EXPECTED_UNSAFE + ("hadoop.rpc.protection",),
            expected_false_positives=hdfs.EXPECTED_FALSE_POSITIVES
            + tuple(common["false_positives"])),
        "mapreduce": AppSpec(
            "mapreduce", mapreduce.MAPREDUCE_FULL_REGISTRY,
            dependency_rules=tuple(mapreduce.MAPREDUCE_DEPENDENCY_RULES),
            expected_unsafe=mapreduce.EXPECTED_UNSAFE,
            expected_false_positives=mapreduce.EXPECTED_FALSE_POSITIVES),
        "yarn": AppSpec(
            "yarn", yarn.YARN_FULL_REGISTRY,
            expected_unsafe=yarn.EXPECTED_UNSAFE,
            expected_false_positives=yarn.EXPECTED_FALSE_POSITIVES),
    }
    return specs[app]


def section_for_param(param: str) -> str:
    """The Table-3 section a parameter is listed under."""
    if param.startswith("dfs."):
        return "HDFS"
    if param.startswith("mapreduce."):
        return "MapReduce"
    if param.startswith("yarn."):
        return "Yarn"
    if param.startswith("hbase."):
        return "HBase"
    if param.startswith(("hadoop.", "ipc.", "io.", "fs.", "file.", "net.",
                         "seq.")):
        return "Hadoop Common"
    return "Flink"


def paper_ground_truth() -> Dict[str, Dict[str, Tuple[str, ...]]]:
    """Expected unsafe / false-positive params per campaign."""
    return {app: {
        "unsafe": spec_for(app).expected_unsafe,
        "false_positives": spec_for(app).expected_false_positives,
    } for app in APP_NAMES}
