"""The Hadoop Tools unit-test corpus ZebraConf reuses."""

import repro.apps.hadooptools.suite.tools_tests  # noqa: F401
