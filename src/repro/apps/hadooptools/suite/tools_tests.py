"""Hadoop Tools corpus: DistCp and HadoopArchive over mini-HDFS."""

from __future__ import annotations

from repro.apps.hadooptools import DistCp, HadoopArchive
from repro.apps.hdfs import DFSClient, HdfsConfiguration, MiniDFSCluster
from repro.common.errors import TestFailure
from repro.common.rngblock import randrange_block
from repro.core.registry import TestContext, unit_test


@unit_test("hadooptools", "TestDistCp.testLargeListingCopy",
           tags=("tools", "timeout"))
def test_distcp_large_listing(ctx: TestContext) -> None:
    """DistCp's source enumeration is a long-running NameNode RPC; the
    tool enforces its own read deadline while the server paces keepalives
    by its own (Table 3: ipc.client.rpc-timeout.ms)."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=2) as cluster:
        cluster.start()
        dfs = DFSClient(conf, cluster)
        payloads = {}
        for index in range(3):
            name = "src%02d" % index
            payloads[name] = ("data-%d-" % index).encode("utf-8") * 20
            dfs.write_file("/distcp/src/%s" % name, payloads[name],
                           replication=1)
        copied = DistCp(conf, cluster).run("/distcp/src", "/distcp/dst")
        if len(copied) != 3:
            raise TestFailure("DistCp copied %d of 3 files" % len(copied))
        for name, payload in payloads.items():
            if dfs.read_file("/distcp/dst/%s" % name) != payload:
                raise TestFailure("DistCp corrupted %s" % name)
        cluster.check_health()


@unit_test("hadooptools", "TestHadoopArchive.testArchiveRoundTrip",
           tags=("tools",))
def test_hadoop_archive_round_trip(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        dfs = DFSClient(conf, cluster)
        payloads = {}
        for index in range(4):
            name = "file%02d" % index
            payloads[name] = bytes(randrange_block(ctx.rng, 256, 256 + index))
            dfs.write_file("/har/in/%s" % name, payloads[name], replication=1)
        tool = HadoopArchive(conf, cluster)
        index_map = tool.archive("/har/in", "/har/out.har")
        for name, payload in payloads.items():
            if tool.extract("/har/out.har", index_map, name) != payload:
                raise TestFailure("archive entry %s corrupted" % name)
        cluster.check_health()


@unit_test("hadooptools", "TestDistCp.testEmptySourceDirectory",
           tags=("tools", "timeout"))
def test_distcp_empty_source(ctx: TestContext) -> None:
    """The listing RPC still runs long even when the tree is empty."""
    conf = HdfsConfiguration()
    with MiniDFSCluster(conf, num_datanodes=1) as cluster:
        cluster.start()
        DFSClient(conf, cluster).mkdirs("/empty/src")
        copied = DistCp(conf, cluster).run("/empty/src", "/empty/dst")
        if copied:
            raise TestFailure("copied files out of an empty directory")
        cluster.check_health()


@unit_test("hadooptools", "TestToolRunner.testArgumentSplitting",
           tags=("util",))
def test_tool_runner_args(ctx: TestContext) -> None:
    """Node-free helper test, filtered by the pre-run."""
    args = "-update -p /a /b".split()
    flags = [a for a in args if a.startswith("-")]
    if flags != ["-update", "-p"]:
        raise TestFailure("argument splitting broke")


@unit_test("hadooptools", "TestDistCpOptions.testDefaults", tags=("util",))
def test_distcp_option_defaults(ctx: TestContext) -> None:
    conf = HdfsConfiguration()
    if conf.get_int("ipc.client.rpc-timeout.ms") < 0:
        raise TestFailure("negative default rpc timeout")
