"""Hadoop Tools: DistCp and HadoopArchive (no parameters of their own —
Table 1 — but their tests exercise Hadoop Common and HDFS parameters)."""

from repro.apps.hadooptools.tools import DistCp, HadoopArchive

#: Parameters this campaign is expected to surface (they belong to
#: Hadoop Common / HDFS; Hadoop Tools has none of its own).
EXPECTED_UNSAFE_VIA_TOOLS = (
    "hadoop.rpc.protection",
    "ipc.client.rpc-timeout.ms",
)

__all__ = ["DistCp", "HadoopArchive", "EXPECTED_UNSAFE_VIA_TOOLS"]
