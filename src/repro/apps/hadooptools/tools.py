"""Hadoop Tools: DistCp and HadoopArchive over (mini-)HDFS.

Hadoop Tools have no parameters of their own (Table 1) but exercise
Hadoop Common and HDFS machinery — notably the long-running listing RPC
inside DistCp, which is where ``ipc.client.rpc-timeout.ms`` bites: the
tool enforces *its* read deadline while the NameNode paces keepalives by
its own idea of the timeout.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, List

from repro.apps.hdfs.client import DFSClient
from repro.common.errors import ChecksumError
from repro.common.ipc import RpcClient

#: simulated seconds the NameNode needs to enumerate a big source tree.
LISTING_DURATION_S = 300.0


class DistCp:
    """Distributed copy: long listing RPC, then per-file copy."""

    def __init__(self, conf: Any, cluster: Any) -> None:
        self.conf = conf
        self.cluster = cluster
        self.rpc = RpcClient(conf, ipc=cluster.ipc)
        self.dfs = DFSClient(conf, cluster)

    def run(self, source_dir: str, target_dir: str) -> List[str]:
        """Copy every file under ``source_dir`` to ``target_dir``."""
        names = self.cluster.sim.run_process(
            self.rpc.call_timed(self.cluster.namenode.rpc, "list_dir",
                                (source_dir,), duration=LISTING_DURATION_S),
            name="distcp-listing")
        copied = []
        for name in names:
            data = self.dfs.read_file("%s/%s" % (source_dir, name))
            target = "%s/%s" % (target_dir, name)
            self.dfs.write_file(target, data, replication=1)
            copied.append(target)
        return copied


class HadoopArchive:
    """har archiver: bundle a directory into one file plus an index."""

    def __init__(self, conf: Any, cluster: Any) -> None:
        self.conf = conf
        self.cluster = cluster
        self.rpc = RpcClient(conf, ipc=cluster.ipc)
        self.dfs = DFSClient(conf, cluster)

    def archive(self, source_dir: str, archive_path: str) -> Dict[str, Any]:
        names = self.rpc.call(self.cluster.namenode.rpc, "list_dir",
                              source_dir)
        blob = bytearray()
        index: Dict[str, Any] = {}
        for name in names:
            data = self.dfs.read_file("%s/%s" % (source_dir, name))
            index[name] = {"offset": len(blob), "length": len(data),
                           "crc": zlib.crc32(data) & 0xFFFFFFFF}
            blob.extend(data)
        self.dfs.write_file(archive_path, bytes(blob), replication=1)
        return index

    def extract(self, archive_path: str, index: Dict[str, Any],
                name: str) -> bytes:
        blob = self.dfs.read_file(archive_path)
        entry = index[name]
        data = blob[entry["offset"]:entry["offset"] + entry["length"]]
        if (zlib.crc32(data) & 0xFFFFFFFF) != entry["crc"]:
            raise ChecksumError("archive entry %s failed crc verification"
                                % name)
        return data
