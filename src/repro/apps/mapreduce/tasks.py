"""MapTask and ReduceTask: the shuffle and the output-commit protocol.

Every encode/decode decision is made with the *task's own* configuration:

* a MapTask partitions its output into ``mapreduce.job.reduces`` buckets,
  spills them compressed/encrypted per its own flags, and serves them
  over SSL (or not) per its own shuffle setting;
* a ReduceTask fetches one output per ``mapreduce.job.maps`` map id,
  expecting its own transport/compression/encryption settings, and
  commits its part file with its own committer algorithm version and
  final-output compression.

This is the whole Table-3 MapReduce family, reproduced mechanistically.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ShuffleError
from repro.common.node import Node, node_init, register_node_type
from repro.common.wire import decode_payload, encode_payload

register_node_type("mapreduce", "MapTask")
register_node_type("mapreduce", "ReduceTask")
register_node_type("mapreduce", "JobHistoryServer")

#: job-scoped key for encrypted intermediate data (rolled per job in real
#: MR; constant here because key distribution is not the failure mode).
INTERMEDIATE_DATA_KEY = b"mr-intermediate-key"

#: filename suffix per final-output codec (cf. TextOutputFormat).
FINAL_OUTPUT_SUFFIX = ".gz"


def _partition(key: str, num_partitions: int) -> int:
    return sum(key.encode("utf-8")) % max(num_partitions, 1)


class MapTask(Node):
    node_type = "MapTask"

    def __init__(self, conf: Any, cluster: Any, task_index: int) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.task_index = task_index
            self._sort_mb = self.conf.get_int("mapreduce.task.io.sort.mb")
            #: internal field behind the private-API false positive.
            self._io_sort_factor = self.conf.get_int(
                "mapreduce.task.io.sort.factor")
            self._speculative = self.conf.get_bool("mapreduce.map.speculative")
            #: partition index -> list of (key, value) pairs.
            self._spills: Dict[int, List[Tuple[str, int]]] = {}

    # ------------------------------------------------------------------
    def run_map(self, records: List[str]) -> None:
        """Word-count map over the input slice; spill per partition."""
        num_partitions = self.conf.get_int("mapreduce.job.reduces")
        for line in records:
            for word in line.split():
                bucket = self._spills.setdefault(
                    _partition(word, num_partitions), [])
                bucket.append((word, 1))

    # ------------------------------------------------------------------
    def serve_shuffle(self, partition: int) -> bytes:
        """Serve one partition to a fetching reducer, framed with *this
        mapper's* compression/encryption/SSL settings."""
        self.ensure_running()
        num_partitions = self.conf.get_int("mapreduce.job.reduces")
        if partition >= num_partitions:
            raise ShuffleError(
                "mapper %d wrote %d partitions, reducer asked for "
                "partition %d" % (self.task_index, num_partitions, partition))
        payload = {"pairs": self._spills.get(partition, [])}
        # The codec class is resolved unconditionally (as Hadoop's
        # JobConf.getMapOutputCompressorClass does) and applied only when
        # compression is enabled.
        codec = self.conf.get_enum("mapreduce.map.output.compress.codec")
        if not self.conf.get_bool("mapreduce.map.output.compress"):
            codec = None
        key = (INTERMEDIATE_DATA_KEY
               if self.conf.get_bool("mapreduce.job.encrypted-intermediate-data")
               else None)
        return encode_payload(payload, codec=codec, encryption_key=key,
                              ssl=self.conf.get_bool("mapreduce.shuffle.ssl.enabled"))


class ReduceTask(Node):
    node_type = "ReduceTask"

    def __init__(self, conf: Any, cluster: Any, task_index: int) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.task_index = task_index
            self._parallel_copies = self.conf.get_int(
                "mapreduce.reduce.shuffle.parallelcopies")
            self._io_sort_factor = self.conf.get_int(
                "mapreduce.task.io.sort.factor")
            self._speculative = self.conf.get_bool(
                "mapreduce.reduce.speculative")
            self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def run_shuffle(self) -> None:
        """Copy one map output per map id this reducer *believes* exists."""
        expected_maps = self.conf.get_int("mapreduce.job.maps")
        for map_index in range(expected_maps):
            mapper = self.cluster.map_task(map_index)
            if mapper is None:
                raise ShuffleError(
                    "reducer %d fails copying mapper %d output: no such "
                    "map task (job launched fewer maps)"
                    % (self.task_index, map_index))
            raw = mapper.serve_shuffle(self.task_index)
            codec = self.conf.get_enum("mapreduce.map.output.compress.codec")
            if not self.conf.get_bool("mapreduce.map.output.compress"):
                codec = None
            key = (INTERMEDIATE_DATA_KEY
                   if self.conf.get_bool(
                       "mapreduce.job.encrypted-intermediate-data")
                   else None)
            payload = decode_payload(
                raw, codec=codec, encryption_key=key,
                ssl=self.conf.get_bool("mapreduce.shuffle.ssl.enabled"))
            for word, count in payload["pairs"]:
                self.counts[word] = self.counts.get(word, 0) + count

    # ------------------------------------------------------------------
    def commit_output(self, output_fs: Dict[str, bytes]) -> str:
        """Write the part file per *this reducer's* committer version and
        final-output compression setting; returns the path written."""
        body = json.dumps(dict(sorted(self.counts.items()))).encode("utf-8")
        name = "part-r-%05d" % self.task_index
        if self.conf.get_bool("mapreduce.output.fileoutputformat.compress"):
            import zlib
            name += FINAL_OUTPUT_SUFFIX
            body = zlib.compress(body, 6)
        version = self.conf.get_int(
            "mapreduce.fileoutputcommitter.algorithm.version")
        if version == 1:
            path = "_temporary/attempt_r_%05d/%s" % (self.task_index, name)
        else:
            path = name
        output_fs[path] = body
        return path
