"""MapReduce-flavoured Configuration bound to the merged MR registry."""

from __future__ import annotations

from repro.apps.mapreduce.params import MAPREDUCE_FULL_REGISTRY
from repro.common.configuration import Configuration


class JobConf(Configuration):
    """``Configuration`` with mapred-default.xml + core-default.xml defaults
    (Hadoop calls this class JobConf; the name is kept for familiarity)."""

    registry = MAPREDUCE_FULL_REGISTRY
