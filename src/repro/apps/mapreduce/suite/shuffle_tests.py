"""MapReduce corpus: shuffle-focused tests, a flaky test, node-free tests."""

from __future__ import annotations

from repro.apps.mapreduce import JobConf, JobRunner, MiniMRCluster
from repro.apps.mapreduce.tasks import _partition
from repro.common.errors import TestFailure
from repro.common.rngblock import randrange_block
from repro.core.registry import TestContext, unit_test


@unit_test("mapreduce", "TestShuffleHandler.testShuffleRoundTrip",
           tags=("shuffle",))
def test_shuffle_round_trip(ctx: TestContext) -> None:
    """Random input through the full shuffle path — compression,
    encryption, and SSL framing all cross the mapper/reducer boundary."""
    conf = JobConf()
    words = ["w%02d" % draw for draw in randrange_block(ctx.rng, 40, 300)]
    lines = [" ".join(words[i:i + 10]) for i in range(0, len(words), 10)]
    expected: dict = {}
    for word in words:
        expected[word] = expected.get(word, 0) + 1
    with MiniMRCluster(conf) as cluster:
        cluster.start()
        runner = JobRunner(conf, cluster)
        output = runner.run_wordcount("job_shuffle_001", lines)
        if runner.read_output(output) != expected:
            raise TestFailure("shuffled word counts are wrong")


@unit_test("mapreduce", "TestFetcher.testRacyFetchRetry", flaky=True,
           tags=("shuffle", "flaky"),
           notes="Nondeterministic: the fetch retry loses its race ~20% "
                 "of trials.")
def test_racy_fetch_retry(ctx: TestContext) -> None:
    conf = JobConf()
    with MiniMRCluster(conf) as cluster:
        cluster.start()
        runner = JobRunner(conf, cluster)
        runner.run_wordcount("job_fetch_001", ["a b c", "b c d"])
        if ctx.maybe(0.2):
            raise TestFailure("fetcher retry raced the mapper cleanup "
                              "and lost (timing-dependent)")


@unit_test("mapreduce", "TestPartitioner.testHashPartition", tags=("util",))
def test_hash_partition(ctx: TestContext) -> None:
    """Pure function test: starts no nodes, filtered by the pre-run."""
    for word in ("alpha", "beta", "gamma"):
        if not 0 <= _partition(word, 4) < 4:
            raise TestFailure("partition out of range")
    if _partition("anything", 1) != 0:
        raise TestFailure("single-partition jobs must map to partition 0")


@unit_test("mapreduce", "TestJobConf.testDefaults", tags=("util",))
def test_jobconf_defaults(ctx: TestContext) -> None:
    """Node-free configuration sanity checks."""
    conf = JobConf()
    if conf.get_int("mapreduce.job.reduces") <= 0:
        raise TestFailure("non-positive default reducer count")
    if conf.get_enum("mapreduce.map.output.compress.codec") not in (
            "gzip", "snappy", "lz4"):
        raise TestFailure("unknown default codec")
