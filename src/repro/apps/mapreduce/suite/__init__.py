"""The MapReduce whole-system unit-test corpus ZebraConf reuses."""

import repro.apps.mapreduce.suite.job_tests  # noqa: F401
import repro.apps.mapreduce.suite.shuffle_tests  # noqa: F401
import repro.apps.mapreduce.suite.more_job_tests  # noqa: F401
