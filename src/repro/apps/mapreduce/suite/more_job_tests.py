"""MapReduce corpus: wider jobs and history-server scenarios."""

from __future__ import annotations

from repro.apps.mapreduce import JobConf, JobRunner, MiniMRCluster
from repro.common.errors import TestFailure
from repro.common.rngblock import randrange_block
from repro.core.registry import TestContext, unit_test


@unit_test("mapreduce", "TestLargeSort.testWideJobRoundTrip", tags=("job",))
def test_wide_job_round_trip(ctx: TestContext) -> None:
    """A wider word count: random input, many distinct keys, all part
    files merged back and compared against a locally computed answer."""
    conf = JobConf()
    words = ["key%03d" % draw for draw in randrange_block(ctx.rng, 120, 600)]
    lines = [" ".join(words[i:i + 12]) for i in range(0, len(words), 12)]
    expected: dict = {}
    for word in words:
        expected[word] = expected.get(word, 0) + 1
    with MiniMRCluster(conf) as cluster:
        cluster.start()
        runner = JobRunner(conf, cluster)
        output = runner.run_wordcount("job_wide_001", lines)
        merged = runner.read_output(output)
        if merged != expected:
            missing = set(expected) - set(merged)
            raise TestFailure("wide job lost %d keys" % len(missing))


@unit_test("mapreduce", "TestJobHistoryServer.testSeveralJobsListed",
           tags=("history",))
def test_several_jobs_listed(ctx: TestContext) -> None:
    conf = JobConf()
    with MiniMRCluster(conf) as cluster:
        cluster.start()
        runner = JobRunner(conf, cluster)
        for index in range(3):
            runner.run_wordcount("job_multi_%03d" % index, ["x y", "y z"])
        jobs = runner.rpc.call(cluster.history_server.rpc, "list_jobs")
        listed = {j["job_id"] for j in jobs}
        expected = {"job_multi_%03d" % i for i in range(3)}
        if not expected <= listed:
            raise TestFailure("history lost jobs: %s" % (expected - listed))
        for job in jobs:
            if job["maps"] != conf.get_int("mapreduce.job.maps"):
                raise TestFailure(
                    "history reports %d maps, the user's config says %d"
                    % (job["maps"], conf.get_int("mapreduce.job.maps")))
