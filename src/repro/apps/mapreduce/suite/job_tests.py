"""MapReduce corpus: whole jobs, commit protocol, output naming, history."""

from __future__ import annotations

from repro.apps.mapreduce import JobConf, JobRunner, MiniMRCluster
from repro.apps.mapreduce.tasks import FINAL_OUTPUT_SUFFIX
from repro.common.errors import TestFailure
from repro.core.registry import TestContext, unit_test

#: deterministic word-count input shared by the job tests.
INPUT_LINES = [
    "the quick brown fox jumps over the lazy dog",
    "the dog barks at the quick fox",
    "brown foxes and lazy dogs sleep",
    "quick quick slow slow",
]


def _expected_counts() -> dict:
    counts: dict = {}
    for line in INPUT_LINES:
        for word in line.split():
            counts[word] = counts.get(word, 0) + 1
    return counts


@unit_test("mapreduce", "TestMapReduceJob.testWordCount", tags=("job",))
def test_wordcount(ctx: TestContext) -> None:
    conf = JobConf()
    with MiniMRCluster(conf) as cluster:
        cluster.start()
        runner = JobRunner(conf, cluster)
        output = runner.run_wordcount("job_wordcount_001", INPUT_LINES)
        merged = runner.read_output(output)
        if merged != _expected_counts():
            raise TestFailure("word-count output is wrong or incomplete: "
                              "%d keys vs %d expected"
                              % (len(merged), len(_expected_counts())))


@unit_test("mapreduce", "TestFileOutputCommitter.testCommitThenArchive",
           tags=("job",),
           notes="Table 3: mixed committer versions leave task files under "
                 "_temporary, breaking Hadoop Archive.")
def test_commit_then_archive(ctx: TestContext) -> None:
    conf = JobConf()
    with MiniMRCluster(conf) as cluster:
        cluster.start()
        runner = JobRunner(conf, cluster)
        output = runner.run_wordcount("job_archive_001", INPUT_LINES)
        archive = runner.archive_output(output)
        if not archive["parts"]:
            raise TestFailure("archive contains no part files")


@unit_test("mapreduce", "TestTextOutputFormat.testPartFileNaming",
           tags=("job", "inconsistency"))
def test_part_file_naming(ctx: TestContext) -> None:
    """The user predicts output file names from their own configuration
    (Table 3: mapreduce.output.fileoutputformat.compress — 'End users may
    observe inconsistent names of output files')."""
    conf = JobConf()
    with MiniMRCluster(conf) as cluster:
        cluster.start()
        runner = JobRunner(conf, cluster)
        output = runner.run_wordcount("job_naming_001", INPUT_LINES)
        expect_suffix = conf.get_bool("mapreduce.output.fileoutputformat.compress")
        for path in output:
            if path.startswith("_temporary/"):
                continue
            has_suffix = path.endswith(FINAL_OUTPUT_SUFFIX)
            if has_suffix != expect_suffix:
                raise TestFailure(
                    "user expected output files %s the %s suffix, found %r"
                    % ("with" if expect_suffix else "without",
                       FINAL_OUTPUT_SUFFIX, path))


@unit_test("mapreduce", "TestJobHistoryServer.testFinishedJobListed",
           tags=("history",))
def test_job_history(ctx: TestContext) -> None:
    conf = JobConf()
    with MiniMRCluster(conf) as cluster:
        cluster.start()
        runner = JobRunner(conf, cluster)
        runner.run_wordcount("job_history_001", INPUT_LINES)
        jobs = runner.rpc.call(cluster.history_server.rpc, "list_jobs")
        if not any(j["job_id"] == "job_history_001" for j in jobs):
            raise TestFailure("finished job missing from the history server")


@unit_test("mapreduce", "TestTaskImpl.testSortFactorInternals",
           observability="private", tags=("internals",),
           notes="§7.1 FP: asserts a task-internal field against the "
                 "test's configuration.")
def test_sort_factor_internals(ctx: TestContext) -> None:
    conf = JobConf()
    with MiniMRCluster(conf) as cluster:
        cluster.start()
        task = cluster.launch_map_task(0)
        if task._io_sort_factor != conf.get_int("mapreduce.task.io.sort.factor"):
            raise TestFailure("task merge fan-in internals diverged from "
                              "the test's configuration")
