"""MapReduce parameter registry (curated subset of mapred-default.xml).

Contains the eight MapReduce parameters from the paper's Table 3, the
parameter behind MapReduce's private-API false positive, and safe
parameters read by tasks and the JobHistoryServer.
"""

from __future__ import annotations

from repro.apps.commonlib.params import COMMON_REGISTRY
from repro.common.params import (BOOL, DURATION_MS, ENUM, FLOAT, INT, SIZE,
                                 STR, ParamRegistry)
from repro.core.testgen import DependencyRule

MAPREDUCE_REGISTRY = ParamRegistry("mapreduce")
_d = MAPREDUCE_REGISTRY.define

# ---------------------------------------------------------------------------
# Table 3: heterogeneous-unsafe MapReduce parameters
# ---------------------------------------------------------------------------
_d("mapreduce.fileoutputcommitter.algorithm.version", INT, 1,
   candidates=(1, 2),
   description="v1 commits via _temporary + job-commit move; v2 commits "
               "directly to the output directory.")
_d("mapreduce.job.encrypted-intermediate-data", BOOL, False,
   tags=("wire-format",),
   description="Encrypt map outputs spilled for the shuffle.")
_d("mapreduce.job.maps", INT, 2, candidates=(2, 4), tags=("task-count",),
   description="Number of map tasks; reducers copy one output per map.")
_d("mapreduce.job.reduces", INT, 2, candidates=(2, 4), tags=("task-count",),
   description="Number of reduce tasks; mappers partition output per reducer.")
_d("mapreduce.map.output.compress", BOOL, False, tags=("wire-format",),
   description="Compress map outputs for the shuffle.")
_d("mapreduce.map.output.compress.codec", ENUM, "gzip",
   values=("gzip", "snappy", "lz4"), tags=("wire-format",),
   description="Codec for compressed map outputs.")
_d("mapreduce.output.fileoutputformat.compress", BOOL, False,
   tags=("inconsistency",),
   description="Compress final job output; changes the part-file names.")
_d("mapreduce.shuffle.ssl.enabled", BOOL, False, tags=("wire-format",),
   description="Serve/fetch shuffle data over SSL.")

# ---------------------------------------------------------------------------
# the private-observability false positive (§7.1)
# ---------------------------------------------------------------------------
_d("mapreduce.task.io.sort.factor", INT, 10, candidates=(10, 1000),
   description="Spill-merge fan-in (internal; the MR private-API FP).")

# ---------------------------------------------------------------------------
# safe parameters read by tasks / JobHistoryServer
# ---------------------------------------------------------------------------
_d("mapreduce.task.io.sort.mb", SIZE, 100,
   description="In-memory sort buffer per task.")
_d("mapreduce.task.timeout", DURATION_MS, 600000,
   description="Task liveness timeout.")
_d("mapreduce.map.memory.mb", SIZE, 1024,
   description="Container memory per map task.")
_d("mapreduce.reduce.memory.mb", SIZE, 1024,
   description="Container memory per reduce task.")
_d("mapreduce.reduce.shuffle.parallelcopies", INT, 5,
   description="Concurrent fetchers per reducer.")
_d("mapreduce.jobhistory.max-age-ms", DURATION_MS, 604800000,
   description="Retention for finished-job records.")
_d("mapreduce.jobhistory.joblist.cache.size", INT, 20000,
   description="Jobs cached by the history server.")
_d("mapreduce.job.queuename", STR, "default",
   description="Submission queue.")
_d("mapreduce.map.speculative", BOOL, True,
   description="Speculatively execute slow map tasks.")
_d("mapreduce.reduce.speculative", BOOL, True,
   description="Speculatively execute slow reduce tasks.")
_d("mapreduce.job.reduce.slowstart.completedmaps", FLOAT, 0.05,
   description="Map completion fraction before reducers start.")
_d("mapreduce.input.lineinputformat.linespermap", INT, 1,
   description="Lines per split for NLineInputFormat.")

# ---------------------------------------------------------------------------
# documented parameters never read by the corpus
# ---------------------------------------------------------------------------
_d("mapreduce.job.jvm.numtasks", INT, 1,
   description="Tasks per JVM (JVM reuse).")
_d("mapreduce.task.profile", BOOL, False,
   description="Enable task profiling.")
_d("mapreduce.job.ubertask.enable", BOOL, False,
   description="Run tiny jobs inside the AM JVM.")
_d("mapreduce.shuffle.port", INT, 13562,
   description="ShuffleHandler port.")
_d("mapreduce.jobhistory.address", STR, "0.0.0.0:10020",
   description="History server RPC address.")
_d("mapreduce.jobhistory.webapp.address", STR, "0.0.0.0:19888",
   description="History server web address.")
_d("mapreduce.cluster.acls.enabled", BOOL, False,
   description="Enable job ACL checks.")
_d("mapreduce.am.max-attempts", INT, 2,
   description="ApplicationMaster retry budget.")

#: MapReduce applications see Hadoop Common's parameters too (Table 1).
MAPREDUCE_FULL_REGISTRY = MAPREDUCE_REGISTRY.merged_with(COMMON_REGISTRY)

#: §4 dependency rules: varying the codec only matters with compression on.
MAPREDUCE_DEPENDENCY_RULES = tuple(
    DependencyRule("mapreduce.map.output.compress.codec", codec,
                   "mapreduce.map.output.compress", True)
    for codec in ("gzip", "snappy", "lz4"))
