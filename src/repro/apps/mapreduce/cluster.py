"""MiniMRCluster: in-process MapReduce test harness."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.apps.mapreduce.jobhistory import JobHistoryServer
from repro.apps.mapreduce.tasks import MapTask, ReduceTask
from repro.common.cluster import MiniCluster


class MiniMRCluster(MiniCluster):
    """Runs the JobHistoryServer plus per-job Map/Reduce task 'processes'
    inside this process, all built from the unit test's configuration."""

    def __init__(self, conf: Any) -> None:
        super().__init__()
        self.conf = conf
        self.history_server = self.add_node(JobHistoryServer(conf, self))
        self.map_tasks: List[MapTask] = []
        self.reduce_tasks: List[ReduceTask] = []

    def start(self) -> None:
        self.history_server.start()

    # ------------------------------------------------------------------
    def launch_map_task(self, index: int) -> MapTask:
        task = self.add_node(MapTask(self.conf, self, index))
        task.start()
        self.map_tasks.append(task)
        return task

    def launch_reduce_task(self, index: int) -> ReduceTask:
        task = self.add_node(ReduceTask(self.conf, self, index))
        task.start()
        self.reduce_tasks.append(task)
        return task

    def map_task(self, index: int) -> Optional[MapTask]:
        for task in self.map_tasks:
            if task.task_index == index:
                return task
        return None
