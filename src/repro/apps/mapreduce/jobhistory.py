"""JobHistoryServer: records finished jobs, queried over RPC."""

from __future__ import annotations

from typing import Any, Dict, List

from repro.common.ipc import RpcServer
from repro.common.node import Node, node_init


class JobHistoryServer(Node):
    node_type = "JobHistoryServer"

    def __init__(self, conf: Any, cluster: Any) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            from repro.apps.mapreduce.conf import JobConf
            cluster.ensure_ipc(JobConf)
            self._max_age_ms = self.conf.get_int("mapreduce.jobhistory.max-age-ms")
            self._cache_size = self.conf.get_int(
                "mapreduce.jobhistory.joblist.cache.size")
            self._jobs: List[Dict[str, Any]] = []
            self.rpc = RpcServer("JobHistoryServer", self.conf)
            self.rpc.register("register_job", self.register_job)
            self.rpc.register("list_jobs", self.list_jobs)

    def register_job(self, job_id: str, maps: int, reduces: int) -> bool:
        self._jobs.append({"job_id": job_id, "maps": maps, "reduces": reduces})
        if len(self._jobs) > self._cache_size:
            self._jobs.pop(0)
        return True

    def list_jobs(self) -> List[Dict[str, Any]]:
        return list(self._jobs)
