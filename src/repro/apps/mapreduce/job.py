"""Job driver: launch tasks, run the shuffle, commit the output.

The driver runs inside the unit test (there is no separate AM node in the
corpus, as in many MR whole-system tests), so driver-side decisions —
how many maps/reduces to launch, whether job commit moves ``_temporary``
files — come from the *unit test's* configuration object.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict, List

from repro.apps.mapreduce.tasks import FINAL_OUTPUT_SUFFIX, MapTask, ReduceTask
from repro.common.errors import CommitError
from repro.common.ipc import RpcClient


class JobRunner:
    """Drives one MapReduce job on a MiniMRCluster."""

    def __init__(self, conf: Any, cluster: Any) -> None:
        self.conf = conf
        self.cluster = cluster
        self.rpc = RpcClient(conf, ipc=cluster.ipc)

    def run_wordcount(self, job_id: str, lines: List[str]) -> Dict[str, bytes]:
        """Run a word-count job; returns the output 'directory' (a dict of
        path -> bytes).  Raises on any task or commit failure."""
        num_maps = self.conf.get_int("mapreduce.job.maps")
        num_reduces = self.conf.get_int("mapreduce.job.reduces")

        mappers = [self.cluster.launch_map_task(index)
                   for index in range(num_maps)]
        for index, mapper in enumerate(mappers):
            mapper.run_map(lines[index::num_maps])

        reducers = [self.cluster.launch_reduce_task(index)
                    for index in range(num_reduces)]
        output_fs: Dict[str, bytes] = {}
        for reducer in reducers:
            reducer.run_shuffle()
            reducer.commit_output(output_fs)

        self._job_commit(output_fs)
        self.rpc.call(self.cluster.history_server.rpc, "register_job",
                      job_id, num_maps, num_reduces)
        return output_fs

    def _job_commit(self, output_fs: Dict[str, bytes]) -> None:
        """v1 job commit moves task files out of ``_temporary``; v2 has
        nothing to do (tasks already wrote final files)."""
        version = self.conf.get_int(
            "mapreduce.fileoutputcommitter.algorithm.version")
        if version != 1:
            return
        for path in sorted(p for p in output_fs if p.startswith("_temporary/")):
            body = output_fs.pop(path)
            output_fs[path.rsplit("/", 1)[1]] = body

    # ------------------------------------------------------------------
    def archive_output(self, output_fs: Dict[str, bytes]) -> Dict[str, Any]:
        """Hadoop Archive over the job output: refuses leftover
        ``_temporary`` entries and gaps in the part-file sequence (the
        'Hadoop Archive error' of Table 3)."""
        leftovers = [p for p in output_fs if p.startswith("_temporary/")]
        if leftovers:
            raise CommitError(
                "Hadoop Archive error: uncommitted task output left under "
                "_temporary: %s" % leftovers[0])
        parts = sorted(p for p in output_fs if p.startswith("part-r-"))
        expected = self.conf.get_int("mapreduce.job.reduces")
        if len(parts) != expected:
            raise CommitError(
                "Hadoop Archive error: expected %d part files, found %d"
                % (expected, len(parts)))
        return {"parts": parts, "bytes": sum(len(v) for v in output_fs.values())}

    def read_output(self, output_fs: Dict[str, bytes]) -> Dict[str, int]:
        """Merge all part files back into one word-count dictionary,
        decoding compressed parts by their suffix (the reader follows the
        file name, as TextInputFormat's codec factory does)."""
        merged: Dict[str, int] = {}
        for path, body in output_fs.items():
            if not path.startswith("part-r-"):
                continue
            if path.endswith(FINAL_OUTPUT_SUFFIX):
                body = zlib.decompress(body)
            for word, count in json.loads(body.decode("utf-8")).items():
                merged[word] = merged.get(word, 0) + count
        return merged
