"""Mini-MapReduce: MapTask, ReduceTask, JobHistoryServer, job runner."""

from repro.apps.mapreduce.cluster import MiniMRCluster
from repro.apps.mapreduce.conf import JobConf
from repro.apps.mapreduce.job import JobRunner
from repro.apps.mapreduce.jobhistory import JobHistoryServer
from repro.apps.mapreduce.params import (MAPREDUCE_DEPENDENCY_RULES,
                                         MAPREDUCE_FULL_REGISTRY,
                                         MAPREDUCE_REGISTRY)
from repro.apps.mapreduce.tasks import MapTask, ReduceTask

#: Paper ground truth (Table 3 / §7.1), used only by benches and tests.
EXPECTED_UNSAFE = (
    "mapreduce.fileoutputcommitter.algorithm.version",
    "mapreduce.job.encrypted-intermediate-data",
    "mapreduce.job.maps",
    "mapreduce.job.reduces",
    "mapreduce.map.output.compress",
    "mapreduce.map.output.compress.codec",
    "mapreduce.output.fileoutputformat.compress",
    "mapreduce.shuffle.ssl.enabled",
)

EXPECTED_FALSE_POSITIVES = (
    "mapreduce.task.io.sort.factor",
)

__all__ = [
    "MiniMRCluster", "JobConf", "JobRunner", "JobHistoryServer", "MapTask",
    "ReduceTask", "MAPREDUCE_DEPENDENCY_RULES", "MAPREDUCE_FULL_REGISTRY",
    "MAPREDUCE_REGISTRY", "EXPECTED_UNSAFE", "EXPECTED_FALSE_POSITIVES",
]
