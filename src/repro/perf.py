"""Global switch for the hot-path performance optimisations.

The perf pass (kernel heap compaction, O(1) live-timer counting, wire
encode memoisation, assignment lookup tables, RNG tracking trampoline)
must be *behaviour-preserving*: findings, verdicts, and deterministic
observability snapshots have to come out byte-identical with the
optimisations on or off.  Keeping every optimisation behind one module
global makes that claim testable — the equivalence tests and the
``bench_campaign_wallclock`` benchmark run the same campaign twice, once
per mode, and diff the results.

The flag is read at call sites as a plain module-global load (cheap) and
is **not** a public tuning knob: production runs always leave it on.  It
exists for A/B verification and for measuring the "unoptimised path"
required by the perf-smoke CI gate.
"""

from __future__ import annotations

#: Master switch.  True in normal operation; benches/tests flip it to
#: measure or verify the legacy (pre-optimisation) code paths.
FAST_PATH = True


def fast_path_enabled() -> bool:
    return FAST_PATH


def set_fast_path(enabled: bool) -> bool:
    """Enable/disable the fast paths; returns the previous setting."""
    global FAST_PATH
    previous = FAST_PATH
    FAST_PATH = bool(enabled)
    return previous
