#!/usr/bin/env python
"""Demonstrate the paper's heartbeat reconfiguration workaround (§7.1).

``dfs.heartbeat.interval`` is online-reconfigurable in HDFS (HDFS-1477),
so a rolling reconfiguration creates a *short-term* heterogeneous
configuration.  The paper proposes an ordering rule:

    "if the administrator needs to **increase** the interval, she should
    change it at the **receiver first** and then at the sender"

so the sender's interval never exceeds the receiver's expiry window.
This example performs the reconfiguration in both orders on a live
mini-HDFS cluster and shows that the wrong order gets a healthy DataNode
declared dead while the right order stays safe.

Run::

    python examples/rolling_reconfig_workaround.py
"""

from __future__ import annotations

from repro.apps.hdfs import (DFSAdmin, DFSClient, HdfsConfiguration,
                             MiniDFSCluster)
from repro.core.confagent import ConfAgent

OLD_INTERVAL_S = 3
NEW_INTERVAL_S = 3000  # a large increase, as in Table 3's failing pair


def rolling_increase(receiver_first: bool) -> int:
    """Reconfigure the heartbeat interval on a running cluster; returns
    the number of DataNodes the NameNode (wrongly) declares dead.

    Runs inside a ConfAgent session so each node owns a *clone* of the
    test's configuration — per-node configuration files, as in a real
    deployment.  (Outside a session the in-process nodes would share one
    object and per-node reconfiguration would be impossible — the very
    unit-test property §6.1 describes.)
    """
    session = ConfAgent()
    session.__enter__()
    conf = HdfsConfiguration()
    cluster = MiniDFSCluster(conf, num_datanodes=2)
    cluster.start()
    session.__exit__(None, None, None)
    client = DFSClient(conf, cluster)
    cluster.run_for(30.0)  # cluster is healthy and heartbeating

    admin = DFSAdmin(conf, cluster)
    namenode = cluster.namenode
    datanodes = cluster.datanodes
    steps = ([namenode] + datanodes) if receiver_first \
        else (datanodes + [namenode])
    worst_dead = 0
    for node in steps:
        # `hdfs dfsadmin -reconfig <node> ...` (HDFS-1477)
        admin.reconfig(node, "dfs.heartbeat.interval", NEW_INTERVAL_S)
        # operators pause between nodes of a rolling reconfiguration; the
        # pause is the short-term heterogeneous window, so sample the
        # NameNode's dead list throughout it.
        for _ in range(4):
            cluster.run_for(300.0)
            worst_dead = max(worst_dead, client.get_stats()["dead"])
    cluster.shutdown()
    return worst_dead


def main() -> None:
    print("Increasing dfs.heartbeat.interval from %ds to %ds via rolling "
          "reconfiguration.\n" % (OLD_INTERVAL_S, NEW_INTERVAL_S))

    dead = rolling_increase(receiver_first=False)
    print("sender (DataNode) first : %d DataNode(s) falsely declared dead"
          % dead)
    assert dead > 0, "expected the unsafe ordering to fail"

    dead = rolling_increase(receiver_first=True)
    print("receiver (NameNode) first: %d DataNode(s) falsely declared dead"
          % dead)
    assert dead == 0, "expected the paper's ordering to be safe"

    print("\nOK: the paper's ordering rule keeps the sender interval <= "
          "the receiver's expiry window throughout the change.")


if __name__ == "__main__":
    main()
