#!/usr/bin/env python
"""Walkthrough: a ZebraConf campaign under deterministic fault injection.

Real whole-system unit tests are flaky — messages get lost, daemons die,
clocks drift — and the paper's hypothesis-testing stage (§5) exists
precisely to keep that flakiness out of the findings.  This example
builds a small cluster application on the simulation substrate, plants
one heterogeneous-unsafe parameter, and then runs three campaigns:

1. a **clean** campaign (no faults) — the baseline findings;
2. a **chaos** campaign under a seeded :class:`FaultPlan` — message
   drops/delays/duplicates, node crash/restart cycles, slow I/O, clock
   jitter, and injected harness errors.  The findings must not change:
   injected failures hit heterogeneous and homogeneous trials alike, so
   the Fisher exact test dismisses them;
3. the **same chaos campaign again** — byte-identical report, because the
   fault schedule is deterministic in (plan, seed);

and finally demonstrates checkpoint/resume: the chaos campaign is
journaled to a JSONL file, the journal is truncated as if the process
had been killed mid-run, and a resumed campaign reproduces the
uninterrupted report without re-running the journaled tests.

Run::

    python examples/chaos_campaign.py
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.common.cluster import MiniCluster
from repro.common.configuration import Configuration
from repro.common.errors import TestFailure
from repro.common.faults import FaultPlan
from repro.common.ipc import RpcClient, RpcServer
from repro.common.node import Node, node_init, register_node_type
from repro.common.params import ENUM, INT, ParamRegistry
from repro.core import Campaign, CampaignConfig, TestContext, UnitTest
from repro.core.report import app_report_to_dict

# ---------------------------------------------------------------------------
# 1. A small cluster application on the simulation substrate.
# ---------------------------------------------------------------------------
DEMO_REGISTRY = ParamRegistry("demo")
DEMO_REGISTRY.define("demo.epoch-length", INT, 60, candidates=(60, 3600),
                     description="Planted unsafe: peers must agree on it.")
DEMO_REGISTRY.define("demo.cache-slots", INT, 64, candidates=(64, 1024),
                     description="Safe: read at init, never compared.")
DEMO_REGISTRY.define("hadoop.rpc.protection", ENUM, "authentication",
                     values=("authentication", "integrity", "privacy"),
                     description="Read by the RPC substrate.")

register_node_type("demo", "Member")


class DemoConfiguration(Configuration):
    registry = DEMO_REGISTRY


class Member(Node):
    """A cluster member that serves its epoch length over RPC."""

    node_type = "Member"

    def __init__(self, conf: Configuration, cluster: MiniCluster) -> None:
        with node_init(self):
            super().__init__(conf, cluster)
            self.epoch = self.conf.get_int("demo.epoch-length")
            self.cache_slots = self.conf.get_int("demo.cache-slots")
            self.server = RpcServer("Member", self.conf)
            self.server.register("epoch", lambda: self.epoch)
        self.start()


def membership_test(name: str) -> UnitTest:
    def body(ctx: TestContext) -> None:
        conf = DemoConfiguration()
        with MiniCluster() as cluster:
            first = cluster.add_node(Member(conf, cluster))
            second = cluster.add_node(Member(conf, cluster))
            cluster.run_for(30.0)  # injected crashes land in this window
            if not (first.running and second.running):
                return  # a member is down; nothing to compare
            client = RpcClient(first.conf)
            peer_epoch = client.call(second.server, "epoch")
            if first.epoch != peer_epoch or peer_epoch != conf.get_int(
                    "demo.epoch-length"):
                raise TestFailure("epoch mismatch across the membership")

    return UnitTest(app="demo", name=name, fn=body)


CORPUS = [membership_test("TestMembership.testEpochAgreement%02d" % index)
          for index in range(8)]


def run_campaign(fault_plan=None, checkpoint_path=None):
    config = CampaignConfig(
        fault_plan=fault_plan, checkpoint_path=checkpoint_path,
        only_params=frozenset(("demo.epoch-length", "demo.cache-slots")))
    return Campaign("demo", DEMO_REGISTRY, tests=list(CORPUS),
                    config=config).run()


# ---------------------------------------------------------------------------
# 2. Clean vs chaos vs chaos-again.
# ---------------------------------------------------------------------------
def main() -> None:
    plan = FaultPlan(seed=17, drop_prob=0.12, delay_prob=0.1,
                     duplicate_prob=0.02, crash_prob=0.05,
                     io_slowdown_prob=0.05, clock_jitter=0.02,
                     infra_error_prob=0.01)

    clean = run_campaign()
    chaos = run_campaign(fault_plan=plan)
    chaos_again = run_campaign(fault_plan=plan)

    print("clean campaign : %4d executions, %d faults, reported: %s"
          % (clean.executions, sum(clean.fault_counts.values()),
             sorted(v.param for v in clean.verdicts)))
    print("chaos campaign : %4d executions, %d faults (%s), %d infra "
          "retries, reported: %s"
          % (chaos.executions, sum(chaos.fault_counts.values()),
             ", ".join("%s x%d" % kv for kv in
                       sorted(chaos.fault_counts.items())),
             chaos.infra_retries_performed,
             sorted(v.param for v in chaos.verdicts)))
    print("hypothesis testing under chaos: %d suspicious first trials, "
          "%d dismissed as injected flakiness"
          % (chaos.hypothesis_stats.suspicious_first_trial,
             chaos.hypothesis_stats.filtered_as_flaky))

    assert {v.param for v in clean.verdicts} == {"demo.epoch-length"}
    assert {v.param for v in chaos.verdicts} == {"demo.epoch-length"}
    assert sum(chaos.fault_counts.values()) > 0
    assert app_report_to_dict(chaos) == app_report_to_dict(chaos_again)
    print("OK: same seed, byte-identical chaos report; findings unchanged.")

    # -----------------------------------------------------------------
    # 3. Checkpoint/resume: kill the campaign mid-run, resume, compare.
    # -----------------------------------------------------------------
    handle, path = tempfile.mkstemp(suffix=".jsonl", prefix="zebraconf-ck-")
    os.close(handle)
    try:
        os.unlink(path)
        full = run_campaign(fault_plan=plan, checkpoint_path=path)

        kept, done = [], 0
        for line in open(path):
            if json.loads(line)["kind"] == "test-done":
                done += 1
                if done > 3:  # simulate a kill after the third test
                    continue
            kept.append(line)
        with open(path, "w") as journal:
            journal.writelines(kept)

        resumed = run_campaign(fault_plan=plan, checkpoint_path=path)
        assert app_report_to_dict(resumed) == app_report_to_dict(full)
        print("OK: resumed campaign (3/%d tests restored from the journal) "
              "reproduces the uninterrupted report." % done)
    finally:
        if os.path.exists(path):
            os.unlink(path)


if __name__ == "__main__":
    main()
