#!/usr/bin/env python
"""Quickstart: find heterogeneous-unsafe parameters in a toy system.

This example builds a complete (tiny) target application from scratch —
a configuration class, a node class with the ZebraConf annotations, and
two whole-system unit tests — and then runs a ZebraConf campaign against
it.  One parameter is heterogeneous-unsafe by construction (two peers
whose ``toy.codec`` disagree cannot exchange messages); the campaign
must find exactly that one.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.common.configuration import Configuration, ref_to_clone
from repro.common.errors import DecodeError, TestFailure
from repro.common.params import BOOL, ENUM, INT, ParamRegistry
from repro.core import Campaign, CampaignConfig, TestContext, UnitTest
from repro.core.confagent import current_agent

# ---------------------------------------------------------------------------
# 1. The target application: a registry, a Configuration, a node class.
# ---------------------------------------------------------------------------
TOY_REGISTRY = ParamRegistry("toy")
TOY_REGISTRY.define("toy.codec", ENUM, "json", values=("json", "binary"),
                    description="Message encoding between peers.")
TOY_REGISTRY.define("toy.retries", INT, 3, candidates=(3, 300),
                    description="Client retry budget (harmless).")
TOY_REGISTRY.define("toy.verbose", BOOL, False,
                    description="Verbose logging (harmless).")


class ToyConfiguration(Configuration):
    registry = TOY_REGISTRY


class Peer:
    """A node; note the two ZebraConf annotations (startInit/stopInit via
    the agent, and refToCloneConf via :func:`ref_to_clone`)."""

    node_type = "Peer"

    def __init__(self, conf: ToyConfiguration) -> None:
        agent = current_agent()
        agent.start_init(self, self.node_type)
        try:
            self.conf = ref_to_clone(conf)
            self.retries = self.conf.get_int("toy.retries")
            self.verbose = self.conf.get_bool("toy.verbose")
        finally:
            agent.stop_init()

    def send(self, peer: "Peer", message: str) -> str:
        encoded = "%s:%s" % (self.conf.get_enum("toy.codec"), message)
        return peer.receive(encoded)

    def receive(self, wire: str) -> str:
        codec = self.conf.get_enum("toy.codec")
        prefix = codec + ":"
        if not wire.startswith(prefix):
            raise DecodeError("peer speaks %r, this node expects %s"
                              % (wire.split(":", 1)[0], codec))
        return wire[len(prefix):]


# ---------------------------------------------------------------------------
# 2. The application's existing whole-system unit tests (what ZebraConf
#    reuses — it never writes tests of its own).
# ---------------------------------------------------------------------------
def test_peers_exchange(ctx: TestContext) -> None:
    conf = ToyConfiguration()
    first, second = Peer(conf), Peer(conf)
    if first.send(second, "ping") != "ping":
        raise TestFailure("message corrupted")
    if second.send(first, "pong") != "pong":
        raise TestFailure("reply corrupted")


def test_retries_positive(ctx: TestContext) -> None:
    conf = ToyConfiguration()
    peer = Peer(conf)
    if peer.retries <= 0:
        raise TestFailure("retry budget must be positive")


CORPUS = [
    UnitTest(app="toy", name="TestPeers.testExchange", fn=test_peers_exchange),
    UnitTest(app="toy", name="TestPeers.testRetries", fn=test_retries_positive),
]


# ---------------------------------------------------------------------------
# 3. Run the campaign.
# ---------------------------------------------------------------------------
def main() -> None:
    campaign = Campaign("toy", TOY_REGISTRY, tests=CORPUS,
                        config=CampaignConfig())
    report = campaign.run()

    print("pre-run: %d tests, %d without nodes"
          % (report.prerun_summary.total_tests,
             report.prerun_summary.tests_without_nodes))
    print("instance counts per stage:")
    for stage, count in report.stage_counts.rows():
        print("  %-32s %d" % (stage, count))
    print()
    for verdict in report.verdicts:
        print("REPORTED %-12s -> %s" % (verdict.param, verdict.verdict))
        print("  failing tests: %s" % ", ".join(verdict.failing_tests))
        print("  sample error : %s" % verdict.sample_error)

    found = {v.param for v in report.verdicts if v.is_true_problem}
    assert found == {"toy.codec"}, found
    print("\nOK: exactly the planted heterogeneous-unsafe parameter found.")


if __name__ == "__main__":
    main()
