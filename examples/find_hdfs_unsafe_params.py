#!/usr/bin/env python
"""Run the HDFS campaign and print a Table-3-style report.

This drives the whole ZebraConf pipeline against the mini-HDFS corpus:
pre-run profiling, instance generation, pooled testing with bisection,
hypothesis-testing confirmation, and §7.1 triage.

Run::

    python examples/find_hdfs_unsafe_params.py
"""

from __future__ import annotations

import time

from repro.apps import catalog
from repro.core import Campaign, CampaignConfig
from repro.core.report import render_table


def main() -> None:
    spec = catalog.spec_for("hdfs")
    campaign = Campaign("hdfs", spec.registry,
                        dependency_rules=spec.dependency_rules,
                        config=CampaignConfig())
    started = time.time()
    report = campaign.run()
    elapsed = time.time() - started

    print("campaign finished in %.1fs wall time; %d unit-test executions"
          % (elapsed, report.executions))
    print("modelled machine time: %.1f hours\n" % (report.machine_time_s / 3600))

    print("Instance counts after each technique (Table 5 column):")
    for stage, count in report.stage_counts.rows():
        print("  %-32s %12s" % (stage, format(count, ",")))
    print()

    rows = []
    for verdict in report.verdicts:
        rows.append([verdict.param,
                     "TRUE PROBLEM" if verdict.is_true_problem
                     else "false positive",
                     verdict.category if verdict.is_true_problem
                     else verdict.fp_reason])
    print(render_table(["Parameter", "Verdict", "Category / FP cause"], rows))

    true_count = len(report.true_problems)
    print("\n%d reported, %d true problems, %d false positives"
          % (len(report.verdicts), true_count, len(report.false_positives)))
    print("(the paper's HDFS section of Table 3 lists 21 HDFS parameters "
          "plus the Hadoop Common ones its tests surface)")


if __name__ == "__main__":
    main()
