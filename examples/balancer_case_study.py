#!/usr/bin/env python
"""Reproduce the paper's two HDFS Balancer case studies (§7.1).

1. ``dfs.datanode.balance.max.concurrent.moves`` — the Balancer
   over-dispatches against a 1-slot DataNode; every declined move costs
   an 1100 ms congestion back-off, collapsing throughput ~10x.  The paper
   measured (DataNode:50, Balancer:50)=14s, (1,1)=16.7s, (1,50)=154s.
2. ``dfs.datanode.balance.bandwidthPerSec`` — a fast sender drives a slow
   receiver's bandwidth quota into deficit; the receiver's progress
   reports stall behind the deficit and the Balancer times out.

Run::

    python examples/balancer_case_study.py
"""

from __future__ import annotations

from repro.apps.hdfs import Balancer, HdfsConfiguration, MiniDFSCluster
from repro.common.errors import BalancerTimeout
from repro.core.confagent import ConfAgent
from repro.core.testgen import HeteroAssignment, ParamAssignment


def _session(param: str, dn0_value, dn1_value, others):
    return ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param=param, group="DataNode", group_values=(dn0_value, dn1_value),
        other_value=others),)))


def concurrent_moves_timing(dn_limit: int, balancer_limit: int) -> float:
    with _session("dfs.datanode.balance.max.concurrent.moves",
                  dn_limit, dn_limit, balancer_limit):
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=2)
        cluster.start()
        moves = [{"block_id": cluster.place_block("/b/f%03d" % i, ["dn0"]),
                  "source": "dn0", "target": "dn1"} for i in range(100)]
        result = Balancer(conf, cluster).run_balancing(moves,
                                                       timeout_s=100000.0)
        cluster.shutdown()
        return result["elapsed_s"]


def bandwidth_scenario(source_rate: int, target_rate: int) -> str:
    with _session("dfs.datanode.balance.bandwidthPerSec",
                  source_rate, target_rate, target_rate):
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=2)
        cluster.start()
        balancer = Balancer(conf, cluster)
        try:
            result = balancer.run_throttled_transfer(
                "dn0", "dn1", block_bytes=50 * 1024 * 1024,
                progress_timeout_s=3.0)
            outcome = "completed in %.1f simulated seconds" % result["elapsed_s"]
        except BalancerTimeout as exc:
            outcome = "BALANCER TIMEOUT: %s" % exc
        cluster.shutdown()
        return outcome


def main() -> None:
    print("=== Case study 1: dfs.datanode.balance.max.concurrent.moves ===")
    print("(paper: (50,50)=14s, (1,1)=16.7s, (1,50)=154s — a ~9.2x collapse)")
    timings = {}
    for dn_limit, balancer_limit in ((50, 50), (1, 1), (1, 50), (50, 1)):
        elapsed = concurrent_moves_timing(dn_limit, balancer_limit)
        timings[(dn_limit, balancer_limit)] = elapsed
        print("  (DataNode:%2d, Balancer:%2d) -> %7.1f simulated seconds"
              % (dn_limit, balancer_limit, elapsed))
    ratio = timings[(1, 50)] / timings[(1, 1)]
    print("  heterogeneous collapse factor: %.1fx (paper: ~9.2x)\n" % ratio)

    print("=== Case study 2: dfs.datanode.balance.bandwidthPerSec ===")
    mb = 1024 * 1024
    for source, target, label in (
            (10 * mb, 10 * mb, "homogeneous default"),
            (100 * 1024, 100 * 1024, "homogeneous low"),
            (1000 * mb, 100 * 1024, "HETEROGENEOUS fast->slow")):
        print("  %-26s %s" % (label + ":", bandwidth_scenario(source, target)))
    print("\nThe paper's proposed fix: reserve a small bandwidth fraction "
          "for critical traffic like progress reports (§7.1).")


if __name__ == "__main__":
    main()
