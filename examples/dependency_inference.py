#!/usr/bin/env python
"""Infer parameter dependencies automatically (§4's future work).

The paper's TestGenerator takes hand-written dependency rules ("when
testing parameter p1 with value v1, we should set p2's value to v2") and
notes: "Future work could extract the relationship between different
parameters automatically."  `repro.core.depinfer` implements that: it
re-runs a unit test once per candidate value of a driver parameter and
diffs which parameters get read.

The example reproduces §4's own motivating case — the HDFS http/https
policy and its two address parameters — then uses the inferred rules in
a targeted campaign.

Run::

    python examples/dependency_inference.py
"""

from __future__ import annotations

from repro.apps import catalog
from repro.core import Campaign, CampaignConfig
from repro.core.depinfer import infer_dependencies, infer_rules_for_corpus
from repro.core.registry import load_all_suites


def main() -> None:
    corpus = load_all_suites()
    spec = catalog.spec_for("hdfs")
    test = corpus.get("hdfs", "TestFsck.testFsckHealthy")

    print("inferring dependencies on %s, driver=dfs.http.policy ..."
          % test.full_name)
    findings = infer_dependencies(test, spec.registry,
                                  drivers=["dfs.http.policy"])
    for finding in findings:
        print("  %s is only read when %s = %r"
              % (finding.dependent, finding.driver, finding.enabling_value))

    rules = infer_rules_for_corpus([test], spec.registry,
                                   drivers=["dfs.http.policy"])
    print("\nderived %d TestGenerator rules, e.g.:" % len(rules))
    for rule in rules[:3]:
        print("  when testing %s=%r, pin %s=%r"
              % (rule.param, rule.value, rule.companion,
                 rule.companion_value))

    print("\nrunning a targeted campaign on dfs.http.policy with the "
          "inferred rules...")
    report = Campaign(
        "hdfs", spec.registry, dependency_rules=tuple(rules),
        config=CampaignConfig(
            only_params=frozenset({"dfs.http.policy"}))).run()
    for verdict in report.verdicts:
        print("  %s -> %s" % (verdict.param, verdict.verdict))
    assert any(v.param == "dfs.http.policy" and v.is_true_problem
               for v in report.verdicts)
    print("\nOK: the manually written §4 rule was recovered automatically.")


if __name__ == "__main__":
    main()
