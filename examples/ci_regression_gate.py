#!/usr/bin/env python
"""Use ZebraConf as a CI gate for heterogeneous-safety regressions.

The paper observes that campaigns "do not need to be run frequently";
the operational pattern for a project adopting ZebraConf is:

1. run a campaign once and record the verdicts as a baseline;
2. on every release candidate, re-run and diff — any *new* unsafe
   parameter is a regression that should block the release.

This example simulates that lifecycle on mini-Flink: record a baseline,
then "develop" a regression (a new parameter whose value feeds the actor
system's wire framing on one side only) and watch the gate trip.

Run::

    python examples/ci_regression_gate.py
"""

from __future__ import annotations

import tempfile

from repro.apps import catalog
from repro.core import Campaign, CampaignConfig
from repro.core.baseline import (compare_to_baseline, load_baseline,
                                 save_baseline)


def run_campaign():
    spec = catalog.spec_for("flink")
    return Campaign("flink", spec.registry, config=CampaignConfig()).run()


def main() -> None:
    print("release N: recording the heterogeneous-safety baseline...")
    baseline_report = run_campaign()
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as handle:
        baseline_path = handle.name
    save_baseline(baseline_report, baseline_path)
    print("  %d true problems recorded: %s\n"
          % (len(baseline_report.true_problems),
             sorted(v.param for v in baseline_report.true_problems)))

    print("release N+1: re-running the campaign and diffing...")
    fresh_report = run_campaign()
    diff = compare_to_baseline(fresh_report, load_baseline(baseline_path))
    print("  " + diff.render().replace("\n", "\n  "))
    assert diff.clean

    print("\nsimulating a regression: a new unsafe parameter appears in "
          "the next release's report...")
    tampered = load_baseline(baseline_path)
    tampered["true_problems"].remove("akka.ssl.enabled")
    diff = compare_to_baseline(fresh_report, tampered)
    print("  " + diff.render().replace("\n", "\n  "))
    assert diff.has_regressions
    print("\nCI verdict: FAIL the build — a parameter became "
          "heterogeneous-unsafe since the recorded baseline.")
    print("(equivalent CLI: `python -m repro campaign flink --compare "
          "baseline.json`, exit code 1 on regression)")


if __name__ == "__main__":
    main()
