#!/usr/bin/env python
"""Apply the paper's §7.3 remediations and show the hazards disappear.

§7.3: "the existing paradigm, in which each node reads configuration
values from its configuration file, is not sufficient anymore ... a node
may need to ask for configuration values from other nodes" and "each
node should reserve a small fraction of bandwidth for critical traffic".

This example re-runs three Table-3 failure scenarios twice each — stock
behaviour vs the paper's proposed fix:

1. max.concurrent.moves — Balancer fetches each DataNode's limit
   (HDFS-7466) instead of using its own;
2. bandwidthPerSec     — progress reports ride a reserved bandwidth
   slice instead of queueing behind the balancing deficit;
3. upgrade.domain.factor — Balancer fetches the factor from the
   NameNode instead of its local file.

Run::

    python examples/remediation.py
"""

from __future__ import annotations

from repro.apps.hdfs import Balancer, HdfsConfiguration, MiniDFSCluster
from repro.common.errors import BalancerTimeout
from repro.core.confagent import ConfAgent
from repro.core.testgen import HeteroAssignment, ParamAssignment


def session(param, group, group_values, other):
    return ConfAgent(assignment=HeteroAssignment((ParamAssignment(
        param=param, group=group, group_values=group_values,
        other_value=other),)))


def outcome(fn) -> str:
    try:
        result = fn()
        return "OK (%s)" % (", ".join("%s=%s" % kv for kv in result.items()))
    except BalancerTimeout as exc:
        return "BALANCER TIMEOUT (%s...)" % str(exc)[:60]


def concurrent_moves(fixed: bool):
    with session("dfs.datanode.balance.max.concurrent.moves", "DataNode",
                 (1,), 50):
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=2)
        cluster.start()
        try:
            moves = [{"block_id": cluster.place_block("/b/%d" % i, ["dn0"]),
                      "source": "dn0", "target": "dn1"} for i in range(100)]
            return Balancer(conf, cluster).run_balancing(
                moves, timeout_s=100.0, fetch_datanode_limits=fixed)
        finally:
            cluster.shutdown()


def bandwidth(fixed: bool):
    with session("dfs.datanode.balance.bandwidthPerSec", "DataNode",
                 (1000 * 1024 * 1024, 100 * 1024), 100 * 1024):
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=2)
        cluster.start()
        try:
            return Balancer(conf, cluster).run_throttled_transfer(
                "dn0", "dn1", block_bytes=50 * 1024 * 1024,
                progress_timeout_s=3.0,
                critical_reserve_fraction=0.05 if fixed else 0.0)
        finally:
            cluster.shutdown()


def upgrade_domain(fixed: bool):
    with session("dfs.namenode.upgrade.domain.factor", "Balancer", (1,), 3):
        conf = HdfsConfiguration()
        cluster = MiniDFSCluster(conf, num_datanodes=5,
                                 upgrade_domains=["ud0", "ud1", "ud2", "ud0",
                                                  "ud3"])
        cluster.start()
        try:
            block_id = cluster.place_block("/ud/b", ["dn0", "dn1", "dn2"])
            balancer = Balancer(conf, cluster)
            domains = balancer.rpc_client.call(cluster.namenode.rpc,
                                               "get_upgrade_domains")
            target = balancer.pick_target(["dn0", "dn1", "dn2"],
                                          source_dn="dn2",
                                          candidates=["dn3", "dn4"],
                                          domains=domains,
                                          use_namenode_factor=fixed)
            return balancer.run_balancing(
                [{"block_id": block_id, "source": "dn2", "target": target}],
                timeout_s=30.0)
        finally:
            cluster.shutdown()


def main() -> None:
    scenarios = (
        ("dfs.datanode.balance.max.concurrent.moves",
         "fetch limits from DataNodes (HDFS-7466)", concurrent_moves),
        ("dfs.datanode.balance.bandwidthPerSec",
         "reserve bandwidth for critical traffic", bandwidth),
        ("dfs.namenode.upgrade.domain.factor",
         "fetch the factor from the NameNode", upgrade_domain),
    )
    for param, fix, runner in scenarios:
        print(param)
        print("  stock    : %s" % outcome(lambda: runner(False)))
        print("  with fix : %s   [%s]" % (outcome(lambda: runner(True)), fix))
        print()


if __name__ == "__main__":
    main()
