#!/usr/bin/env python
"""Run the paper's entire evaluation (§7) and print every table.

This is the repository's "reproduce everything" entry point: it runs a
full ZebraConf campaign on all six target applications and prints
Table-1/2/3/5 analogues, the §7.1 true/false-positive split, and the
§7.2 hypothesis-testing effect.  Takes ~20-30s.

Run::

    python examples/full_evaluation.py
"""

from __future__ import annotations

import time
from collections import Counter

from repro.apps import catalog
from repro.common.node import NODE_TYPES
from repro.core import CampaignConfig, run_full_campaign
from repro.core.registry import load_all_suites
from repro.core.report import (render_stage_counts, render_summary,
                               render_table, render_unsafe_params)


def main() -> None:
    corpus = load_all_suites()

    print("== Table 1: corpus statistics (ours vs paper) ==")
    rows = []
    for app in catalog.APP_NAMES:
        spec = catalog.spec_for(app)
        paper = catalog.PAPER_STATISTICS[app]
        rows.append([app, len(corpus.for_app(app)), paper["unit_tests"],
                     len(spec.registry), paper["app_params"]])
    print(render_table(["App", "#tests (ours)", "#tests (paper)",
                        "#params (ours)", "#params (paper)"], rows))

    print("\n== Table 2: node types ==")
    for app in ("flink", "hbase", "hdfs", "mapreduce", "yarn"):
        print("  %-10s %s" % (app, ", ".join(NODE_TYPES.get(app, []))))

    print("\nrunning the full campaign over all six applications...")
    started = time.time()
    report = run_full_campaign(CampaignConfig())
    print("done in %.1fs wall time\n" % (time.time() - started))

    print("== Table 3: true heterogeneous-unsafe parameters ==")
    print(render_unsafe_params(report))
    sections = Counter(catalog.section_for_param(v.param)
                       for v in report.unique_true_problems())
    print("\nper-section counts:", dict(sections))

    print("\n== Table 5: instance counts after each technique ==")
    print(render_stage_counts(report.apps))
    print("\npaper's Table 5, for comparison:")
    rows = []
    stages = ("Original", "After pre-running unit tests",
              "After removing uncertainty", "After pooled testing")
    for index, stage in enumerate(stages):
        rows.append([stage] + [format(catalog.PAPER_TABLE5[a][index], ",")
                               for a in catalog.APP_NAMES])
    print(render_table(["Stage"] + list(catalog.APP_NAMES), rows))

    print("\n== §7.1 / §7.2 summary ==")
    print(render_summary(report))
    suspicious = sum(a.hypothesis_stats.suspicious_first_trial
                     for a in report.apps)
    filtered = sum(a.hypothesis_stats.filtered_as_flaky for a in report.apps)
    print("suspicious first-trial instances: %d, filtered as flaky: %d"
          % (suspicious, filtered))
    print("(paper: 2,167 first-trial failures, 731 filtered)")

    print("\nfalse positives by cause:")
    for verdict in report.unique_false_positives():
        print("  %-55s %s" % (verdict.param, verdict.fp_reason))


if __name__ == "__main__":
    main()
